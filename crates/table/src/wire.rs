//! Canonical binary serialization for tables and values — the wire format
//! the checkpoint store (`wrangler-ckpt`) persists stage outputs in.
//!
//! Two properties are load-bearing and tested:
//!
//! * **Byte-exact round-trips.** Floats are encoded as their raw IEEE-754
//!   bits (`f64::to_bits`), never rendered and re-parsed, so a resumed
//!   wrangle that loads a checkpointed table is `to_bits`-identical to the
//!   pass that wrote it — including negative zero and every subnormal.
//!   (NaN payloads round-trip too, though the pipeline's containment layer
//!   quarantines them before they get this far.)
//! * **Canonical renderings.** A value/table has exactly one encoding, so
//!   [`hash64`] over the encoding is a content key: equal content ⇔ equal
//!   bytes ⇔ equal hash (modulo 64-bit collisions, which the checkpoint
//!   record's full checksum backstops).
//!
//! The format is deliberately boring: fixed-width little-endian integers,
//! length-prefixed UTF-8, one tag byte per value. No varints, no framing —
//! framing, checksums and atomicity belong to the checkpoint store, not the
//! payload encoding.

use crate::{DataType, Field, Result, Schema, Table, TableError, Value};

/// Seed/offset of the FNV-1a 64-bit hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher — deterministic across runs and platforms
/// (unlike `DefaultHasher`, whose algorithm is not a stable contract).
#[derive(Debug, Clone, Copy)]
pub struct Hasher64 {
    state: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64 { state: FNV_OFFSET }
    }
}

impl Hasher64 {
    /// Fresh hasher.
    pub fn new() -> Hasher64 {
        Hasher64::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a UTF-8 string, length-prefixed so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        // One avalanche round (splitmix64 finalizer): FNV alone is weak in
        // the high bits for short inputs, and content keys slice these bits
        // into file names.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a-64 (avalanched) over a byte slice.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.write(bytes);
    h.finish()
}

/// Encoder: append-only byte buffer with fixed-width primitives.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` as its raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Decoder over a byte slice; every read is bounds-checked and a truncated
/// or malformed buffer surfaces as a structured [`TableError::Invalid`],
/// never a panic — a torn checkpoint must be detectable, not trusted.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(TableError::Invalid(format!(
                "wire: truncated buffer (need {n} bytes at offset {}, have {})",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(TableError::Invalid(format!("wire: bad bool byte {b}"))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` encoded as `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| TableError::Invalid(format!("wire: length {v} exceeds usize")))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.usize()?;
        // Length sanity before allocation-sized reads: a bit-flipped length
        // field must fail cleanly, not attempt a multi-exabyte take.
        if n > self.remaining() {
            return Err(TableError::Invalid(format!(
                "wire: declared length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|e| TableError::Invalid(format!("wire: invalid UTF-8: {e}")))
    }
}

// Value tags — part of the persisted format; append-only.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Encode one value (tag byte + payload).
pub fn encode_value(enc: &mut Enc, v: &Value) {
    match v {
        Value::Null => {
            enc.u8(TAG_NULL);
        }
        Value::Bool(b) => {
            enc.u8(TAG_BOOL).bool(*b);
        }
        Value::Int(i) => {
            enc.u8(TAG_INT).i64(*i);
        }
        Value::Float(f) => {
            enc.u8(TAG_FLOAT).f64(*f);
        }
        Value::Str(s) => {
            enc.u8(TAG_STR).str(s);
        }
    }
}

/// Decode one value.
pub fn decode_value(dec: &mut Dec<'_>) -> Result<Value> {
    match dec.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Bool(dec.bool()?)),
        TAG_INT => Ok(Value::Int(dec.i64()?)),
        TAG_FLOAT => Ok(Value::Float(dec.f64()?)),
        TAG_STR => Ok(Value::Str(dec.str()?)),
        t => Err(TableError::Invalid(format!("wire: unknown value tag {t}"))),
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Null => 0,
        DataType::Bool => 1,
        DataType::Int => 2,
        DataType::Float => 3,
        DataType::Str => 4,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    match t {
        0 => Ok(DataType::Null),
        1 => Ok(DataType::Bool),
        2 => Ok(DataType::Int),
        3 => Ok(DataType::Float),
        4 => Ok(DataType::Str),
        _ => Err(TableError::Invalid(format!("wire: unknown dtype tag {t}"))),
    }
}

/// Encode a schema (field count, then name/dtype/nullable per field).
pub fn encode_schema(enc: &mut Enc, schema: &Schema) {
    enc.usize(schema.len());
    for f in schema.fields() {
        enc.str(&f.name);
        enc.u8(dtype_tag(f.dtype));
        enc.bool(f.nullable);
    }
}

/// Decode a schema.
pub fn decode_schema(dec: &mut Dec<'_>) -> Result<Schema> {
    let n = dec.usize()?;
    let mut fields = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = dec.str()?;
        let dtype = dtype_from_tag(dec.u8()?)?;
        let nullable = dec.bool()?;
        let f = if nullable {
            Field::new(name, dtype)
        } else {
            Field::required(name, dtype)
        };
        fields.push(f);
    }
    Schema::new(fields)
}

/// Encode a table columnar: schema, row count, then each column's values.
pub fn encode_table(enc: &mut Enc, t: &Table) {
    encode_schema(enc, t.schema());
    enc.usize(t.num_rows());
    for col in t.columns() {
        for v in col {
            encode_value(enc, v);
        }
    }
}

/// Decode a table written by [`encode_table`].
pub fn decode_table(dec: &mut Dec<'_>) -> Result<Table> {
    let schema = decode_schema(dec)?;
    let rows = dec.usize()?;
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let mut col = Vec::with_capacity(rows.min(1 << 20));
        for _ in 0..rows {
            col.push(decode_value(dec)?);
        }
        columns.push(col);
    }
    Table::from_columns(schema, columns)
}

/// Canonical bytes of a table (the payload the checkpoint store persists).
pub fn table_bytes(t: &Table) -> Vec<u8> {
    let mut enc = Enc::new();
    encode_table(&mut enc, t);
    enc.into_bytes()
}

/// Content hash of a table over its canonical encoding: equal content ⇔
/// equal hash. This is the "source payload hash" checkpoint keys derive from.
pub fn table_hash(t: &Table) -> u64 {
    hash64(&table_bytes(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::empty(Schema::new(vec![
            Field::new("sku", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("stock", DataType::Int),
            Field::new("live", DataType::Bool),
        ]).unwrap());
        t.push_row(vec![
            Value::Str("a1".into()),
            Value::Float(9.99),
            Value::Int(3),
            Value::Bool(true),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Null,
            Value::Float(-0.0),
            Value::Int(-7),
            Value::Bool(false),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Str("üñïçødé \"quoted\"".into()),
            Value::Float(f64::MIN_POSITIVE / 2.0), // subnormal
            Value::Int(i64::MIN),
            Value::Bool(true),
        ])
        .unwrap();
        t
    }

    #[test]
    fn table_roundtrip_is_bit_exact() {
        let t = sample_table();
        let bytes = table_bytes(&t);
        let back = decode_table(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        assert_eq!(back.schema().names(), t.schema().names());
        for r in 0..t.num_rows() {
            for c in 0..t.num_columns() {
                let (a, b) = (t.get(r, c).unwrap(), back.get(r, c).unwrap());
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "({r},{c})")
                    }
                    _ => assert_eq!(a, b, "({r},{c})"),
                }
            }
        }
        // Canonical: re-encoding the decoded table gives identical bytes.
        assert_eq!(table_bytes(&back), bytes);
    }

    #[test]
    fn negative_zero_and_nan_round_trip_by_bits() {
        let mut enc = Enc::new();
        encode_value(&mut enc, &Value::Float(-0.0));
        encode_value(&mut enc, &Value::Float(f64::from_bits(0x7ff8_dead_beef_0001)));
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let a = decode_value(&mut dec).unwrap();
        let b = decode_value(&mut dec).unwrap();
        assert!(matches!(a, Value::Float(f) if f.to_bits() == (-0.0f64).to_bits()));
        assert!(matches!(b, Value::Float(f) if f.to_bits() == 0x7ff8_dead_beef_0001));
    }

    #[test]
    fn hash_distinguishes_content_not_identity() {
        let t = sample_table();
        let mut u = sample_table();
        assert_eq!(table_hash(&t), table_hash(&u));
        u.set(0, 1, Value::Float(9.990000001)).unwrap();
        assert_ne!(table_hash(&t), table_hash(&u));
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let bytes = table_bytes(&sample_table());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let r = decode_table(&mut Dec::new(&bytes[..cut]));
            assert!(r.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn bitflips_never_panic() {
        let bytes = table_bytes(&sample_table());
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x40;
            // Any outcome is fine except a panic; most flips fail to decode,
            // a value-payload flip decodes to different content.
            let _ = decode_table(&mut Dec::new(&mutated));
        }
    }

    #[test]
    fn hasher_is_order_and_boundary_sensitive() {
        let mut a = Hasher64::new();
        a.write_str("ab").write_str("c");
        let mut b = Hasher64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(hash64(b"xyz"), hash64(b"xyz"));
        assert_ne!(hash64(b"xyz"), hash64(b"xyw"));
    }
}
