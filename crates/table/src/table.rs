//! Columnar tables.
//!
//! [`Table`] stores data column-major (`Vec<Vec<Value>>`), which keeps
//! per-column operations (profiling, statistics, matching on instances) cache
//! friendly and cheap, while still offering row-wise construction and
//! iteration for operators that need whole tuples (joins, entity resolution).

use std::fmt;

use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::{Result, TableError};

/// A schema-typed, column-major table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    /// Empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Build from rows; every row must match the schema arity.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Build from columns; all columns must have equal length.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Value>>) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(TableError::ArityMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(TableError::Invalid("ragged columns".into()));
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// Convenience constructor used heavily in tests and examples: string
    /// column names, rows of values.
    pub fn literal(names: &[&str], rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut t = Table::from_rows(Schema::of_strs(names), rows)?;
        t.reinfer_types();
        Ok(t)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Cell at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> Result<&Value> {
        self.columns
            .get(col)
            .ok_or(TableError::ColumnIndexOutOfBounds {
                index: col,
                width: self.columns.len(),
            })?
            .get(row)
            .ok_or_else(|| TableError::Invalid(format!("row {row} out of bounds ({})", self.rows)))
    }

    /// Cell by row index and column name.
    pub fn get_named(&self, row: usize, name: &str) -> Result<&Value> {
        self.get(row, self.schema.index_of(name)?)
    }

    /// Replace the cell at (`row`, `col`). Used by repair operations.
    pub fn set(&mut self, row: usize, col: usize, v: Value) -> Result<()> {
        let width = self.columns.len();
        let column = self
            .columns
            .get_mut(col)
            .ok_or(TableError::ColumnIndexOutOfBounds { index: col, width })?;
        let cell = column
            .get_mut(row)
            .ok_or_else(|| TableError::Invalid(format!("row {row} out of bounds")))?;
        *cell = v;
        Ok(())
    }

    /// Immutable view of column `i`.
    pub fn column(&self, i: usize) -> Result<&[Value]> {
        self.columns
            .get(i)
            .map(Vec::as_slice)
            .ok_or(TableError::ColumnIndexOutOfBounds {
                index: i,
                width: self.columns.len(),
            })
    }

    /// Immutable view of the column named `name`.
    pub fn column_named(&self, name: &str) -> Result<&[Value]> {
        self.column(self.schema.index_of(name)?)
    }

    /// Iterate all columns in schema order.
    pub fn columns(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.columns.iter().map(Vec::as_slice)
    }

    /// Materialize row `i` as an owned vector.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Iterate rows as freshly materialized vectors.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Recompute each field's `dtype` from the data (lub over cell types) and
    /// `nullable` from the presence of nulls. Call after bulk edits.
    pub fn reinfer_types(&mut self) {
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        for (f, col) in fields.iter_mut().zip(&self.columns) {
            let mut dt = DataType::Null;
            let mut nullable = false;
            for v in col {
                if v.is_null() {
                    nullable = true;
                } else {
                    dt = dt.unify(v.dtype());
                }
            }
            f.dtype = dt;
            f.nullable = nullable;
        }
        self.schema = Schema::new(fields).expect("names unchanged"); // lint-allow: renaming one field cannot break uniqueness the caller checked
    }

    /// New table keeping only rows whose index passes `keep`.
    pub fn retain_rows(&self, keep: impl Fn(usize) -> bool) -> Table {
        let columns: Vec<Vec<Value>> = self
            .columns
            .iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|(i, _)| keep(*i))
                    .map(|(_, v)| v.clone())
                    .collect()
            })
            .collect();
        let rows = columns.first().map_or(0, Vec::len);
        Table {
            schema: self.schema.clone(),
            columns,
            rows,
        }
    }

    /// New table with rows reordered (or duplicated/dropped) per `order`,
    /// whose entries are row indices into `self`.
    pub fn take(&self, order: &[usize]) -> Result<Table> {
        for &i in order {
            if i >= self.rows {
                return Err(TableError::Invalid(format!("take index {i} out of bounds")));
            }
        }
        let columns: Vec<Vec<Value>> = self
            .columns
            .iter()
            .map(|c| order.iter().map(|&i| c[i].clone()).collect())
            .collect();
        Ok(Table {
            schema: self.schema.clone(),
            columns,
            rows: order.len(),
        })
    }

    /// Pretty-print at most `limit` rows as an aligned text table.
    pub fn show(&self, limit: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let n = self.rows.min(limit);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n);
        for r in 0..n {
            let row: Vec<String> = (0..self.num_columns())
                .map(|c| self.columns[c][r].to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .zip(&widths)
            .map(|(n, w)| format!("{n:<w$}"))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in cells {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        if self.rows > limit {
            out.push_str(&format!("... {} more rows\n", self.rows - limit));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.show(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::literal(
            &["name", "price"],
            vec![
                vec!["widget".into(), Value::Float(9.99)],
                vec!["gadget".into(), Value::Float(19.5)],
                vec!["doohickey".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(
            t.get_named(1, "name").unwrap(),
            &Value::Str("gadget".into())
        );
        assert_eq!(t.get(2, 1).unwrap(), &Value::Null);
        assert!(t.get(3, 0).is_err());
        assert!(t.get(0, 9).is_err());
    }

    #[test]
    fn arity_enforced() {
        let mut t = Table::empty(Schema::of_strs(&["a", "b"]));
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
    }

    #[test]
    fn from_columns_rejects_ragged() {
        let s = Schema::of_strs(&["a", "b"]);
        let err = Table::from_columns(s, vec![vec![Value::Int(1)], vec![]]).unwrap_err();
        assert!(matches!(err, TableError::Invalid(_)));
    }

    #[test]
    fn reinfer_types_detects_float_and_null() {
        let t = sample();
        let f = t.schema().field(1).unwrap();
        assert_eq!(f.dtype, DataType::Float);
        assert!(f.nullable);
        let f0 = t.schema().field(0).unwrap();
        assert_eq!(f0.dtype, DataType::Str);
        assert!(!f0.nullable);
    }

    #[test]
    fn retain_and_take() {
        let t = sample();
        let kept = t.retain_rows(|i| i != 1);
        assert_eq!(kept.num_rows(), 2);
        assert_eq!(
            kept.get_named(1, "name").unwrap().as_str(),
            Some("doohickey")
        );
        let taken = t.take(&[2, 2, 0]).unwrap();
        assert_eq!(taken.num_rows(), 3);
        assert_eq!(taken.get_named(2, "name").unwrap().as_str(), Some("widget"));
        assert!(t.take(&[5]).is_err());
    }

    #[test]
    fn set_replaces_cell() {
        let mut t = sample();
        t.set(2, 1, Value::Float(5.0)).unwrap();
        assert_eq!(t.get(2, 1).unwrap(), &Value::Float(5.0));
    }

    #[test]
    fn show_renders_header_and_rows() {
        let s = sample().show(2);
        assert!(s.contains("name"));
        assert!(s.contains("widget"));
        assert!(s.contains("1 more rows"));
    }
}
