//! Schemas: named, typed fields with unification.
//!
//! Schemas are the currency of schema matching (the `wrangler-match` crate) and
//! mapping generation: matching compares [`Field`]s across source schemas,
//! mapping produces transformations from one [`Schema`] to another.

use std::collections::HashMap;
use std::fmt;

use crate::{Result, TableError};

/// The type of a column (or cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Unknown / all-null column.
    Null,
    Bool,
    Int,
    Float,
    Str,
}

/// How safe a cast from one [`DataType`] to another is, statically.
///
/// This is the lattice the static analyzer (`wrangler-lint`) consults before
/// any value is touched: it classifies what [`crate::Value::coerce`] and the
/// mapping normalizer can be *guaranteed* to do for arbitrary values of the
/// source type, not what they happen to do for one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CastSafety {
    /// Every value of the source type converts without information loss
    /// (identity, `Null` → anything, `Int` → `Float` within 2^53, anything
    /// → `Str` rendering).
    Lossless,
    /// Conversion is defined but may lose information or fail per-value
    /// (`Float` → `Int` truncates non-integral values, `Str` → numeric parses
    /// only some strings, `Str` → `Bool` accepts a closed vocabulary).
    Lossy,
    /// No conversion exists; at runtime the value either raises a type error
    /// or passes through unchanged, silently corrupting the column's dtype
    /// (`Bool` → `Int`/`Float`, `Float`/`Int` → `Bool` aside).
    Incompatible,
}

impl DataType {
    /// Least upper bound of two types in the coercion lattice:
    /// `Null` is bottom, `Int ⊔ Float = Float`, anything else mixed is `Str`.
    pub fn unify(self, other: DataType) -> DataType {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, t) | (t, Null) => t,
            (Int, Float) | (Float, Int) => Float,
            _ => Str,
        }
    }

    /// True if this is `Int` or `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Classify a cast from `self` into `target` (see [`CastSafety`]).
    ///
    /// The rules mirror [`crate::Value::coerce`] plus the messy-number
    /// recovery mapping execution layers on top of it:
    ///
    /// * identity and `Null` → anything are lossless;
    /// * anything → `Str` renders losslessly; anything → `Null` keeps the
    ///   value as-is (the untyped target accepts everything);
    /// * `Int` → `Float` is treated as lossless (the system's integers come
    ///   from counting and parsing, far below 2^53);
    /// * `Float` → `Int`, `Str` → numeric, `Str` → `Bool` and `Int` → `Bool`
    ///   are lossy: defined, but truncating or partial;
    /// * `Bool` → numeric and `Float` → `Bool` have no defined conversion.
    pub fn cast_safety(self, target: DataType) -> CastSafety {
        use DataType::*;
        match (self, target) {
            (a, b) if a == b => CastSafety::Lossless,
            (Null, _) | (_, Null) | (_, Str) | (Int, Float) => CastSafety::Lossless,
            (Float, Int) | (Str, Int) | (Str, Float) | (Str, Bool) | (Int, Bool) => {
                CastSafety::Lossy
            }
            (Bool, Int) | (Bool, Float) | (Float, Bool) => CastSafety::Incompatible,
            // Same-type pairs are caught by the guard arm above; these arms
            // are listed so the match stays total without a wildcard that
            // could silently swallow a future DataType variant.
            (Bool, Bool) | (Int, Int) | (Float, Float) => CastSafety::Lossless,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
        };
        write!(f, "{s}")
    }
}

/// One named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name as exposed by the source.
    pub name: String,
    /// Declared or inferred type.
    pub dtype: DataType,
    /// Whether nulls are permitted (informational; not enforced on insert).
    pub nullable: bool,
}

impl Field {
    /// Nullable field of the given name and type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Non-nullable variant.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }
}

/// An ordered list of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema; fails on duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Convenience: all-`Str`, nullable columns with the given names.
    pub fn of_strs(names: &[&str]) -> Self {
        Schema::new(
            names
                .iter()
                .map(|n| Field::new(*n, DataType::Str))
                .collect(),
        )
        .expect("caller guarantees unique names") // lint-allow: documented contract of this helper
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Schema {
            fields: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> Result<&Field> {
        self.fields
            .get(i)
            .ok_or(TableError::ColumnIndexOutOfBounds {
                index: i,
                width: self.fields.len(),
            })
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// True if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Sub-schema with the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field(i)?.clone());
        }
        Schema::new(fields)
    }

    /// Rename column `old` to `new`.
    pub fn rename(&self, old: &str, new: &str) -> Result<Schema> {
        let idx = self.index_of(old)?;
        let mut fields = self.fields.clone();
        fields[idx].name = new.to_string();
        Schema::new(fields)
    }

    /// Check union-compatibility with `other`: same arity, same names, and
    /// return the unified schema (types widened pointwise).
    pub fn union_compatible(&self, other: &Schema) -> Result<Schema> {
        if self.len() != other.len() {
            return Err(TableError::SchemaMismatch(format!(
                "arity {} vs {}",
                self.len(),
                other.len()
            )));
        }
        let mut fields = Vec::with_capacity(self.len());
        for (a, b) in self.fields.iter().zip(other.fields.iter()) {
            if a.name != b.name {
                return Err(TableError::SchemaMismatch(format!(
                    "column `{}` vs `{}`",
                    a.name, b.name
                )));
            }
            fields.push(Field {
                name: a.name.clone(),
                dtype: a.dtype.unify(b.dtype),
                nullable: a.nullable || b.nullable,
            });
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_lattice() {
        use DataType::*;
        assert_eq!(Null.unify(Int), Int);
        assert_eq!(Int.unify(Float), Float);
        assert_eq!(Int.unify(Str), Str);
        assert_eq!(Bool.unify(Bool), Bool);
        assert_eq!(Bool.unify(Int), Str);
    }

    #[test]
    fn cast_safety_lattice() {
        use CastSafety::*;
        use DataType::*;
        assert_eq!(Int.cast_safety(Int), Lossless);
        assert_eq!(Null.cast_safety(Float), Lossless);
        assert_eq!(Float.cast_safety(Str), Lossless);
        assert_eq!(Int.cast_safety(Float), Lossless);
        assert_eq!(Float.cast_safety(Int), Lossy);
        assert_eq!(Str.cast_safety(Float), Lossy);
        assert_eq!(Str.cast_safety(Bool), Lossy);
        assert_eq!(Bool.cast_safety(Float), Incompatible);
        assert_eq!(Float.cast_safety(Bool), Incompatible);
        // Safety never *improves* along a chain: ordering is meaningful.
        assert!(Lossless < Lossy && Lossy < Incompatible);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("a".into()));
    }

    #[test]
    fn index_and_project() {
        let s = Schema::of_strs(&["a", "b", "c"]);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("z").is_err());
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
    }

    #[test]
    fn rename_preserves_order() {
        let s = Schema::of_strs(&["a", "b"]).rename("a", "x").unwrap();
        assert_eq!(s.names(), vec!["x", "b"]);
        assert!(Schema::of_strs(&["a", "b"]).rename("a", "b").is_err());
    }

    #[test]
    fn union_compat_widens() {
        let a = Schema::new(vec![Field::new("p", DataType::Int)]).unwrap();
        let b = Schema::new(vec![Field::new("p", DataType::Float)]).unwrap();
        let u = a.union_compatible(&b).unwrap();
        assert_eq!(u.field(0).unwrap().dtype, DataType::Float);
        let c = Schema::new(vec![Field::new("q", DataType::Int)]).unwrap();
        assert!(a.union_compatible(&c).is_err());
    }

    #[test]
    fn display_formats() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap();
        assert_eq!(s.to_string(), "(a: int, b: str)");
    }
}
