//! A small expression language over rows.
//!
//! Expressions are built by name ([`Expr::col`]) and *bound* against a schema
//! once ([`Expr::bind`]), producing a [`BoundExpr`] that evaluates with plain
//! index lookups — name resolution is paid once per plan, not once per row.
//! Mappings (`wrangler-mapping`) compile their transformations to bound
//! expressions, and quality rules use them as predicates.

use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::{Result, TableError};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// An unbound expression tree referring to columns by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison of two sub-expressions (`Null` compared with anything is `Null`,
    /// mirroring SQL three-valued logic).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// True iff the operand is null.
    IsNull(Box<Expr>),
    /// Lower-case a string operand.
    Lower(Box<Expr>),
    /// Trim whitespace from a string operand.
    Trim(Box<Expr>),
    /// Length of the rendered value in characters.
    Len(Box<Expr>),
    /// First non-null operand.
    Coalesce(Vec<Expr>),
    /// Cast operand to a data type (errors on failure).
    Cast(DataType, Box<Expr>),
    /// Concatenate rendered operands.
    Concat(Vec<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }
    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }
    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }
    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }
    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }
    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }
    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }
    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }
    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }
    /// `self / other` (division by zero yields `Null`).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }
    /// Lower-case.
    pub fn lower(self) -> Expr {
        Expr::Lower(Box::new(self))
    }
    /// Trim whitespace.
    pub fn trim(self) -> Expr {
        Expr::Trim(Box::new(self))
    }
    /// Cast to `dtype`.
    pub fn cast(self, dtype: DataType) -> Expr {
        Expr::Cast(dtype, Box::new(self))
    }

    /// Resolve all column names against `schema`, producing an index-based
    /// executable expression.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                BoundExpr::Cmp(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::Arith(op, a, b) => {
                BoundExpr::Arith(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(schema)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(a.bind(schema)?)),
            Expr::Lower(a) => BoundExpr::Lower(Box::new(a.bind(schema)?)),
            Expr::Trim(a) => BoundExpr::Trim(Box::new(a.bind(schema)?)),
            Expr::Len(a) => BoundExpr::Len(Box::new(a.bind(schema)?)),
            Expr::Coalesce(xs) => {
                BoundExpr::Coalesce(xs.iter().map(|x| x.bind(schema)).collect::<Result<_>>()?)
            }
            Expr::Cast(dt, a) => BoundExpr::Cast(*dt, Box::new(a.bind(schema)?)),
            Expr::Concat(xs) => {
                BoundExpr::Concat(xs.iter().map(|x| x.bind(schema)).collect::<Result<_>>()?)
            }
        })
    }

    /// Bind and evaluate against every row of `table`, returning one value per row.
    pub fn eval_table(&self, table: &Table) -> Result<Vec<Value>> {
        let bound = self.bind(table.schema())?;
        let mut out = Vec::with_capacity(table.num_rows());
        let mut row = Vec::new();
        for i in 0..table.num_rows() {
            row.clear();
            row.extend(
                (0..table.num_columns()).map(|c| table.get(i, c).expect("in bounds").clone()), // lint-allow: i, c iterate this table's own dimensions
            );
            out.push(bound.eval(&row)?);
        }
        Ok(out)
    }
}

/// An expression with column references resolved to indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    Arith(ArithOp, Box<BoundExpr>, Box<BoundExpr>),
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
    Lower(Box<BoundExpr>),
    Trim(Box<BoundExpr>),
    Len(Box<BoundExpr>),
    Coalesce(Vec<BoundExpr>),
    Cast(DataType, Box<BoundExpr>),
    Concat(Vec<BoundExpr>),
}

impl BoundExpr {
    /// Evaluate against one row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        Ok(match self {
            BoundExpr::Col(i) => {
                row.get(*i)
                    .cloned()
                    .ok_or(TableError::ColumnIndexOutOfBounds {
                        index: *i,
                        width: row.len(),
                    })?
            }
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    Value::Null
                } else {
                    let ord = va.cmp(&vb);
                    let res = match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    };
                    Value::Bool(res)
                }
            }
            BoundExpr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                arith(*op, &va, &vb)?
            }
            BoundExpr::And(a, b) => three_valued_and(a.eval(row)?, b.eval(row)?)?,
            BoundExpr::Or(a, b) => three_valued_or(a.eval(row)?, b.eval(row)?)?,
            BoundExpr::Not(a) => match a.eval(row)? {
                Value::Null => Value::Null,
                Value::Bool(v) => Value::Bool(!v),
                other => return Err(TableError::TypeError(format!("NOT on {other:?}"))),
            },
            BoundExpr::IsNull(a) => Value::Bool(a.eval(row)?.is_null()),
            BoundExpr::Lower(a) => match a.eval(row)? {
                Value::Null => Value::Null,
                v => Value::Str(v.render().to_lowercase()),
            },
            BoundExpr::Trim(a) => match a.eval(row)? {
                Value::Null => Value::Null,
                v => Value::Str(v.render().trim().to_string()),
            },
            BoundExpr::Len(a) => match a.eval(row)? {
                Value::Null => Value::Null,
                v => Value::Int(v.render().chars().count() as i64),
            },
            BoundExpr::Coalesce(xs) => {
                let mut out = Value::Null;
                for x in xs {
                    let v = x.eval(row)?;
                    if !v.is_null() {
                        out = v;
                        break;
                    }
                }
                out
            }
            BoundExpr::Cast(dt, a) => a.eval(row)?.coerce(*dt)?,
            BoundExpr::Concat(xs) => {
                let mut s = String::new();
                for x in xs {
                    s.push_str(&x.eval(row)?.render());
                }
                Value::Str(s)
            }
        })
    }

    /// Evaluate as a predicate: `Null` counts as false (SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &[Value]) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(TableError::TypeError(format!(
                "predicate evaluated to {other:?}"
            ))),
        }
    }
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    // Integer arithmetic when both sides are Int (checked; overflow widens to
    // float), float arithmetic otherwise.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let r = match op {
            ArithOp::Add => x.checked_add(*y),
            ArithOp::Sub => x.checked_sub(*y),
            ArithOp::Mul => x.checked_mul(*y),
            ArithOp::Div => {
                return Ok(if *y == 0 {
                    Value::Null
                } else {
                    Value::Float(*x as f64 / *y as f64)
                })
            }
        };
        if let Some(r) = r {
            return Ok(Value::Int(r));
        }
    }
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(TableError::TypeError(format!(
                "arithmetic on {a:?} and {b:?}"
            )))
        }
    };
    Ok(match op {
        ArithOp::Add => Value::Float(x + y),
        ArithOp::Sub => Value::Float(x - y),
        ArithOp::Mul => Value::Float(x * y),
        ArithOp::Div => {
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x / y)
            }
        }
    })
}

fn three_valued_and(a: Value, b: Value) -> Result<Value> {
    Ok(match (to_tri(a)?, to_tri(b)?) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn three_valued_or(a: Value, b: Value) -> Result<Value> {
    Ok(match (to_tri(a)?, to_tri(b)?) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn to_tri(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(TableError::TypeError(format!("boolean op on {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::of_strs(&["a", "b", "s"])
    }

    fn row(a: Value, b: Value, s: Value) -> Vec<Value> {
        vec![a, b, s]
    }

    #[test]
    fn comparisons_and_null_propagation() {
        let e = Expr::col("a").lt(Expr::col("b")).bind(&schema()).unwrap();
        assert_eq!(
            e.eval(&row(1.into(), 2.into(), Value::Null)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            e.eval(&row(Value::Null, 2.into(), Value::Null)).unwrap(),
            Value::Null
        );
        assert!(!e
            .eval_predicate(&row(Value::Null, 2.into(), Value::Null))
            .unwrap());
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        let n = Value::Null;
        assert_eq!(three_valued_and(f.clone(), n.clone()).unwrap(), f);
        assert_eq!(three_valued_and(t.clone(), n.clone()).unwrap(), n);
        assert_eq!(three_valued_or(t.clone(), n.clone()).unwrap(), t);
        assert_eq!(three_valued_or(f.clone(), n.clone()).unwrap(), n);
    }

    #[test]
    fn arithmetic_int_float_and_div_zero() {
        let s = schema();
        let add = Expr::col("a").add(Expr::col("b")).bind(&s).unwrap();
        assert_eq!(
            add.eval(&row(2.into(), 3.into(), Value::Null)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            add.eval(&row(2.into(), Value::Float(0.5), Value::Null))
                .unwrap(),
            Value::Float(2.5)
        );
        let div = Expr::col("a").div(Expr::lit(0)).bind(&s).unwrap();
        assert_eq!(
            div.eval(&row(2.into(), 3.into(), Value::Null)).unwrap(),
            Value::Null
        );
        // Int division is exact float division, not truncation.
        let div2 = Expr::col("a").div(Expr::col("b")).bind(&s).unwrap();
        assert_eq!(
            div2.eval(&row(1.into(), 2.into(), Value::Null)).unwrap(),
            Value::Float(0.5)
        );
    }

    #[test]
    fn int_overflow_widens_to_float() {
        let s = schema();
        let e = Expr::col("a").add(Expr::lit(1)).bind(&s).unwrap();
        let out = e
            .eval(&row(i64::MAX.into(), Value::Null, Value::Null))
            .unwrap();
        assert_eq!(out, Value::Float(i64::MAX as f64 + 1.0));
    }

    #[test]
    fn string_functions() {
        let s = schema();
        let e = Expr::col("s").trim().lower().bind(&s).unwrap();
        assert_eq!(
            e.eval(&row(Value::Null, Value::Null, "  WiDGeT ".into()))
                .unwrap(),
            Value::Str("widget".into())
        );
        let l = Expr::Len(Box::new(Expr::col("s"))).bind(&s).unwrap();
        assert_eq!(
            l.eval(&row(Value::Null, Value::Null, "abc".into()))
                .unwrap(),
            Value::Int(3)
        );
        let c = Expr::Concat(vec![Expr::col("s"), Expr::lit("-"), Expr::col("a")])
            .bind(&s)
            .unwrap();
        assert_eq!(
            c.eval(&row(7.into(), Value::Null, "x".into())).unwrap(),
            Value::Str("x-7".into())
        );
    }

    #[test]
    fn coalesce_and_cast() {
        let s = schema();
        let e = Expr::Coalesce(vec![Expr::col("a"), Expr::col("b"), Expr::lit(0)])
            .bind(&s)
            .unwrap();
        assert_eq!(
            e.eval(&row(Value::Null, 9.into(), Value::Null)).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            e.eval(&row(Value::Null, Value::Null, Value::Null)).unwrap(),
            Value::Int(0)
        );
        let cast = Expr::col("s").cast(DataType::Int).bind(&s).unwrap();
        assert_eq!(
            cast.eval(&row(Value::Null, Value::Null, "12".into()))
                .unwrap(),
            Value::Int(12)
        );
        assert!(cast
            .eval(&row(Value::Null, Value::Null, "xy".into()))
            .is_err());
    }

    #[test]
    fn bind_rejects_unknown_column() {
        assert!(Expr::col("zzz").bind(&schema()).is_err());
    }

    #[test]
    fn eval_table_maps_all_rows() {
        let t = Table::literal(
            &["a", "b", "s"],
            vec![
                vec![1.into(), 2.into(), "x".into()],
                vec![5.into(), 3.into(), "y".into()],
            ],
        )
        .unwrap();
        let vs = Expr::col("a").gt(Expr::col("b")).eval_table(&t).unwrap();
        assert_eq!(vs, vec![Value::Bool(false), Value::Bool(true)]);
    }
}
