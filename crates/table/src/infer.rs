//! Type inference for string-encoded data.
//!
//! Sources deliver everything as strings (CSV cells, extracted web text);
//! inference recovers the most specific [`DataType`] that explains a column,
//! which downstream matching uses as instance-level evidence.

use crate::schema::DataType;
use crate::value::Value;

/// Strings treated as null markers (case-insensitive).
const NULL_MARKERS: &[&str] = &["", "null", "na", "n/a", "none", "-", "nil"];

/// Parse a raw string cell into the most specific value: null markers to
/// `Null`, then `Int`, `Float`, `Bool`, falling back to `Str` (trimmed
/// content preserved as-is, untrimmed).
pub fn parse_cell(raw: &str) -> Value {
    let t = raw.trim();
    if NULL_MARKERS.iter().any(|m| t.eq_ignore_ascii_case(m)) {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        // Only canonical renderings count as integers: "007" and "+5" are
        // identifiers (zip codes, phone fragments), not numbers.
        if i.to_string() == t {
            return Value::Int(i);
        }
    }
    // Reject float syntax Rust accepts but tabular data usually doesn't mean
    // ("inf", "nan" stay strings); accept scientific notation and decimals.
    if looks_like_float(t) {
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
    }
    match t {
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    Value::Str(raw.to_string())
}

fn looks_like_float(t: &str) -> bool {
    let mut has_digit = false;
    for c in t.chars() {
        match c {
            '0'..='9' => has_digit = true,
            '.' | '-' | '+' | 'e' | 'E' => {}
            _ => return false,
        }
    }
    has_digit
}

/// Infer the unified type of a column of raw strings.
pub fn infer_column(raw: &[String]) -> DataType {
    let mut dt = DataType::Null;
    for cell in raw {
        let v = parse_cell(cell);
        if !v.is_null() {
            dt = dt.unify(v.dtype());
        }
    }
    dt
}

/// Parse a column of raw strings into values coerced to `target` where
/// possible; unparseable cells fall back to `Str` (when target is numeric we
/// keep the original string rather than inventing nulls — veracity demands we
/// not destroy evidence).
pub fn parse_column(raw: &[String], target: DataType) -> Vec<Value> {
    raw.iter()
        .map(|cell| {
            let v = parse_cell(cell);
            match (&v, target) {
                (Value::Null, _) => Value::Null,
                // A Str target keeps the trimmed original text verbatim.
                (_, DataType::Str) if v.dtype() != DataType::Str => {
                    Value::Str(cell.trim().to_string())
                }
                // Numeric/bool cells keep their most specific parse: coercing
                // a large Int to a Float column would lose precision, and the
                // Value model compares Int/Float numerically anyway.
                _ => v,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cell_specificity() {
        assert_eq!(parse_cell("42"), Value::Int(42));
        assert_eq!(parse_cell(" -7 "), Value::Int(-7));
        assert_eq!(parse_cell("3.25"), Value::Float(3.25));
        assert_eq!(parse_cell("1e3"), Value::Float(1000.0));
        assert_eq!(parse_cell("true"), Value::Bool(true));
        assert_eq!(parse_cell("N/A"), Value::Null);
        assert_eq!(parse_cell(""), Value::Null);
        assert_eq!(parse_cell("abc"), Value::Str("abc".into()));
        // "inf"/"nan" must remain strings.
        assert_eq!(parse_cell("inf"), Value::Str("inf".into()));
        assert_eq!(parse_cell("nan"), Value::Str("nan".into()));
    }

    #[test]
    fn infer_column_unifies() {
        let col: Vec<String> = ["1", "2.5", ""].iter().map(|s| s.to_string()).collect();
        assert_eq!(infer_column(&col), DataType::Float);
        let col: Vec<String> = ["1", "x"].iter().map(|s| s.to_string()).collect();
        assert_eq!(infer_column(&col), DataType::Str);
        let col: Vec<String> = ["", "na"].iter().map(|s| s.to_string()).collect();
        assert_eq!(infer_column(&col), DataType::Null);
    }

    #[test]
    fn parse_column_preserves_unparseable() {
        let col: Vec<String> = ["1", "oops", ""].iter().map(|s| s.to_string()).collect();
        let vs = parse_column(&col, DataType::Int);
        assert_eq!(vs[0], Value::Int(1));
        assert_eq!(vs[1], Value::Str("oops".into()));
        assert_eq!(vs[2], Value::Null);
    }

    #[test]
    fn parse_column_to_str_renders() {
        let col: Vec<String> = ["42", "x"].iter().map(|s| s.to_string()).collect();
        let vs = parse_column(&col, DataType::Str);
        assert_eq!(vs[0], Value::Str("42".into()));
        assert_eq!(vs[1], Value::Str("x".into()));
    }
}
