//! Property-based tests for the table substrate: value-order laws, CSV
//! round-tripping, and algebraic laws of the relational operators.

use proptest::prelude::*;
use wrangler_table::csv::{read_csv, write_csv};
use wrangler_table::expr::Expr;
use wrangler_table::ops;
use wrangler_table::{Table, Value};

/// Arbitrary scalar values, weighted towards the interesting edge cases.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        2 => any::<bool>().prop_map(Value::Bool),
        4 => any::<i64>().prop_map(Value::Int),
        4 => (-1e12f64..1e12f64).prop_map(Value::Float),
        4 => "[ -~]{0,12}".prop_map(Value::Str), // printable ASCII incl. space/quote/comma
    ]
}

fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    (1usize..=4).prop_flat_map(move |width| {
        let names: Vec<String> = (0..width).map(|i| format!("col{i}")).collect();
        prop::collection::vec(prop::collection::vec(arb_value(), width), 0..=max_rows).prop_map(
            move |rows| {
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                Table::literal(&name_refs, rows).expect("consistent arity")
            },
        )
    })
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        // Antisymmetry + transitivity spot checks via sort stability.
        let mut v = vec![a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        // Eq consistent with Ord.
        prop_assert_eq!(a.cmp(&b) == std::cmp::Ordering::Equal, a == b);
    }

    #[test]
    fn value_hash_consistent_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn csv_roundtrip_preserves_shape_and_strings(t in arb_table(12)) {
        let text = write_csv(&t);
        let back = read_csv(&text).unwrap();
        prop_assert_eq!(back.num_columns(), t.num_columns());
        prop_assert_eq!(back.num_rows(), t.num_rows());
        // The round-trip contract: reading back yields the canonical parse of
        // the written text. Typed values render canonically, so they survive
        // exactly; strings survive up to CSV's inherent inference ambiguity
        // ("42" re-types as Int(42), " 0" trims, "na" becomes Null).
        for r in 0..t.num_rows() {
            for c in 0..t.num_columns() {
                let orig = t.get(r, c).unwrap();
                let got = back.get(r, c).unwrap();
                // Cell-level contract: the canonical parse of the written
                // text. Column-level typing may instead keep the trimmed
                // text verbatim when the column unified to Str.
                let parsed = wrangler_table::infer::parse_cell(&orig.render());
                let as_str = Value::Str(orig.render().trim().to_string());
                prop_assert!(
                    got == &parsed || got == &as_str,
                    "got {got:?}, expected {parsed:?} or {as_str:?} (orig {orig:?})"
                );
            }
        }
    }

    #[test]
    fn filter_true_is_identity_filter_false_is_empty(t in arb_table(12)) {
        let all = ops::filter(&t, &Expr::lit(true)).unwrap();
        prop_assert_eq!(all.num_rows(), t.num_rows());
        let none = ops::filter(&t, &Expr::lit(false)).unwrap();
        prop_assert_eq!(none.num_rows(), 0);
    }

    #[test]
    fn distinct_is_idempotent(t in arb_table(12)) {
        let d1 = ops::distinct(&t);
        let d2 = ops::distinct(&d1);
        prop_assert_eq!(d1.num_rows(), d2.num_rows());
        prop_assert!(d1.num_rows() <= t.num_rows());
    }

    #[test]
    fn union_row_count_adds(t in arb_table(8)) {
        let u = ops::union(&t, &t).unwrap();
        prop_assert_eq!(u.num_rows(), 2 * t.num_rows());
    }

    #[test]
    fn sort_is_permutation_and_ordered(t in arb_table(12)) {
        if t.num_columns() == 0 { return Ok(()); }
        let name = t.schema().names()[0].to_string();
        let s = ops::sort_by(&t, &[&name]).unwrap();
        prop_assert_eq!(s.num_rows(), t.num_rows());
        let col = s.column_named(&name).unwrap();
        for w in col.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Multiset of rows preserved.
        let mut a: Vec<Vec<Value>> = t.iter_rows().collect();
        let mut b: Vec<Vec<Value>> = s.iter_rows().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn project_then_project_composes(t in arb_table(8)) {
        if t.num_columns() < 2 { return Ok(()); }
        let names: Vec<String> = t.schema().names().iter().map(|s| s.to_string()).collect();
        let p1 = ops::project(&t, &[&names[1], &names[0]]).unwrap();
        let p2 = ops::project(&p1, &[&names[0]]).unwrap();
        let direct = ops::project(&t, &[&names[0]]).unwrap();
        prop_assert_eq!(p2, direct);
    }

    #[test]
    fn join_with_self_on_key_contains_all_distinct_keyed_rows(t in arb_table(8)) {
        if t.num_columns() == 0 { return Ok(()); }
        let name = t.schema().names()[0].to_string();
        let j = ops::join(&t, &t, &name, &name).unwrap();
        // Every non-null key row joins with at least itself.
        let non_null = t.column_named(&name).unwrap().iter().filter(|v| !v.is_null()).count();
        prop_assert!(j.num_rows() >= non_null);
    }
}
