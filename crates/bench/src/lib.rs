//! `wrangler-bench` — shared harness utilities for the experiment binaries
//! (`src/bin/e*.rs`) and Criterion benches (`benches/`).
//!
//! Each experiment binary regenerates one table/series of EXPERIMENTS.md on
//! stdout. The helpers here keep workload construction identical across
//! experiments so their numbers are comparable.

use wrangler_context::{DataContext, Ontology, UserContext};
use wrangler_core::Wrangler;
use wrangler_sources::{FleetConfig, SyntheticFleet};
use wrangler_table::{DataType, Schema, Table, Value};

/// Default experiment fleet configuration; experiments override fields.
pub fn default_fleet_config() -> FleetConfig {
    FleetConfig {
        num_products: 200,
        num_sources: 20,
        now: 20,
        coverage: (0.3, 0.8),
        error_rate: (0.02, 0.25),
        null_rate: (0.0, 0.1),
        staleness: (0, 10),
        ..FleetConfig::default()
    }
}

/// Generate the standard fleet for an experiment.
pub fn fleet(cfg: &FleetConfig, seed: u64) -> SyntheticFleet {
    wrangler_sources::synthetic::generate_fleet(cfg, seed)
}

/// Write a benchmark artifact (e.g. `BENCH_e15.json`) atomically —
/// temp + rename via the checkpoint store's primitive — so a killed or
/// crashing bench run can never leave a torn artifact for CI to ingest.
/// Prints the standard wrote/could-not-write line either way.
pub fn write_artifact(path: &str, contents: &str) {
    match wrangler_core::write_atomic(std::path::Path::new(path), contents.as_bytes()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// Target sample = master catalog + an (all-null, Float-typed) price column.
pub fn target_sample(fleet: &SyntheticFleet) -> Table {
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let schema = Schema::new(fields).expect("unique names"); // lint-allow: fixture fields are literal and unique
    let mut columns: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec()) // lint-allow: indices come from the catalog itself
        .collect();
    columns.push(vec![Value::Null; catalog.num_rows()]);
    Table::from_columns(schema, columns).expect("aligned") // lint-allow: columns sliced from one catalog, same length
}

/// Build a ready-to-run wrangling session over a fleet.
pub fn session(fleet: &SyntheticFleet, user: UserContext) -> Wrangler {
    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .expect("catalog keyed by sku"); // lint-allow: fixture catalog always carries a sku column
    let mut w = Wrangler::new(user, ctx, target_sample(fleet));
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    w
}

/// Print a row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a header + underline.
pub fn header(names: &[&str], widths: &[usize]) -> String {
    let h = row(
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let line = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");
    format!("{h}\n{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_and_wrangles() {
        let cfg = FleetConfig {
            num_products: 20,
            num_sources: 3,
            ..default_fleet_config()
        };
        let f = fleet(&cfg, 1);
        let mut w = session(&f, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        assert!(out.entities > 0);
    }

    #[test]
    fn formatting_helpers() {
        let widths = [5, 8];
        let h = header(&["a", "b"], &widths);
        assert!(h.contains("    a"));
        assert!(h.lines().count() == 2);
        let r = row(&["1".into(), "2.5".into()], &widths);
        assert!(r.ends_with("2.5"));
    }
}
