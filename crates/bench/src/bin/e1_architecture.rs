//! E1 — Figure 1 realized: the automated architecture vs manual ETL,
//! sweeping the number of sources (the Volume axis as the paper frames it:
//! "scale ... in terms of the size or number of data sources").
//!
//! Claim under test: the automated pipeline reaches usable quality with zero
//! manual specification effort, while manual ETL needs effort linear in the
//! number of sources to reach comparable quality.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::{Ontology, UserContext};
use wrangler_core::baseline::ManualEtl;
use wrangler_core::eval::score_against_truth;
use wrangler_sources::FleetConfig;
use wrangler_table::{DataType, Field, Schema, Table};

fn main() {
    println!("E1: automated architecture vs manual ETL, by fleet size");
    println!("(200 products; quality = correct-price yield at 0.5% tolerance)\n");
    let widths = [8, 10, 9, 9, 12, 9, 9, 12, 9];
    println!(
        "{}",
        header(
            &[
                "sources",
                "auto_cov",
                "auto_acc",
                "auto_yld",
                "auto_effort",
                "etl_cov",
                "etl_yld",
                "etl_effort",
                "time_s"
            ],
            &widths
        )
    );
    for &n in &[5usize, 10, 20, 40, 80] {
        let cfg = FleetConfig {
            num_sources: n,
            ..default_fleet_config()
        };
        let f = fleet(&cfg, 100 + n as u64);
        let start = Instant::now();
        let mut w = session(&f, UserContext::balanced("e1"));
        let out = w.wrangle().expect("wrangle");
        let auto = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
        let secs = start.elapsed().as_secs_f64();

        // Manual ETL: the expert pays 5 effort units per source spec, written
        // correctly via the synonym oracle.
        let target = Schema::new(vec![
            Field::new("sku", DataType::Str),
            Field::new("price", DataType::Float),
        ])
        .expect("schema");
        let mut etl = ManualEtl::new(target, 5.0);
        let ont = Ontology::ecommerce();
        for (i, s) in f.registry.iter().enumerate() {
            etl.specify_by_inspection(i, &s.table, &|col| {
                ont.resolve(col).and_then(|c| {
                    let name = ont.concept(c).name.clone();
                    ["sku", "price"].contains(&name.as_str()).then_some(name)
                })
            });
        }
        let tables: Vec<&Table> = f.registry.iter().map(|s| &s.table).collect();
        let etl_out = etl.run(&tables).expect("etl run");
        let etl_scores = score_against_truth(&etl_out, &f.truth, 0.005).expect("score");

        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    format!("{:.2}", auto.coverage),
                    format!("{:.2}", auto.price_accuracy),
                    format!("{:.2}", auto.correct_price_yield),
                    "0.0".to_string(),
                    format!("{:.2}", etl_scores.coverage),
                    format!("{:.2}", etl_scores.correct_price_yield),
                    format!("{:.1}", etl.effort_spent),
                    format!("{secs:.2}"),
                ],
                &widths
            )
        );
    }
    println!("\nShape expected: auto_effort constant at 0 while etl_effort grows linearly;");
    println!("auto quality holds or improves with more sources (selection + fusion),");
    println!("ETL quality relies on first-wins and inspects nothing.");
}
