//! E16 — the typed plan IR: static catch-rate and proof-carrying
//! optimization payoff (§4.2, Doan et al.'s compiled-wrangling agenda).
//!
//! Two claims under test. (1) *Analysis*: the whole-plan analyzer catches
//! the three plan-level defect classes — a dead column the projection still
//! consumes, a filter pushed below a lossy/uncertified cast, duplicated map
//! work over one source — statically, with zero error-grade findings on the
//! clean lowered plan. None of these raises a runtime error: without the
//! analyzer they ship silent corruption or silent waste. (2) *Optimization*:
//! executing the optimized plan (filter pushdown, shared target profiles,
//! dead-fusion skipping — every rewrite citing its analysis facts) delivers
//! a byte-identical table while cutting wall-clock and/or bytes scanned
//! versus naive execution, swept at 10/20/40 sources.
//!
//! Protocol: the standard fleet with a 2-of-6-categories row filter and a
//! `[sku, name, price]` projection, containment off (the barrier must be
//! down for acquisition-time pushdown to be legal — barrier-up placements
//! are covered by the core equivalence tests). Catch-rate injects each
//! defect class into the *real lowered* naive IR under 8 seeds. The sweep
//! wrangles each fleet size under naive and optimized modes, asserts the
//! delivered tables fingerprint-identical (`f64::to_bits`), and reads the
//! deterministic `scan.bytes` counters for the bytes-scanned axis.
//! `--counts` prints only the seeded-deterministic half (counters + the
//! rewrite ledger) for CI double-run diffing. A full run writes
//! `BENCH_e16.json`.
//!
//! `lint-allow:` exemptions here follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::{plan_table, ContainPolicy, OptMode, Wrangler};
use wrangler_lint::{Code, DefectClass};
use wrangler_plan::{analyze, inject_plan_defect};
use wrangler_sources::{FleetConfig, SyntheticFleet};
use wrangler_table::{Expr, Table, Value};

const SEED: u64 = 1606;
const SWEEP: [usize; 3] = [10, 20, 40];
const TRIALS: u64 = 8;
const REPS: usize = 3;

fn e16_fleet(num_sources: usize) -> SyntheticFleet {
    let cfg = FleetConfig {
        num_sources,
        ..default_fleet_config()
    };
    fleet(&cfg, SEED)
}

fn workload_filter() -> Expr {
    Expr::col("category")
        .eq(Expr::lit("electronics"))
        .or(Expr::col("category").eq(Expr::lit("home")))
}

fn build(f: &SyntheticFleet, mode: OptMode) -> Wrangler {
    session(f, UserContext::balanced("e16"))
        .with_er_workers(4)
        .with_contain_policy(ContainPolicy::off())
        .with_opt_mode(mode)
        .with_row_filter(workload_filter())
        .with_output_columns(vec!["sku".into(), "name".into(), "price".into()])
}

/// Bit-exact fingerprint: floats via `to_bits`, everything else via debug.
fn fingerprint(t: &Table) -> String {
    let mut s = String::new();
    for r in 0..t.num_rows() {
        for c in 0..t.num_columns() {
            match t.get(r, c).unwrap() {
                // lint-allow: experiment fixture
                Value::Float(v) => s.push_str(&format!("f{:016x};", v.to_bits())),
                v => s.push_str(&format!("{v:?};")),
            }
        }
        s.push('\n');
    }
    s
}

struct SweepRow {
    sources: usize,
    naive_s: f64,
    opt_s: f64,
    naive_bytes: u64,
    opt_bytes: u64,
    rewrites: usize,
    identical: bool,
}

fn sweep(num_sources: usize) -> SweepRow {
    let f = e16_fleet(num_sources);
    let run = |mode: OptMode| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..REPS {
            let mut w = build(&f, mode);
            let t = Instant::now();
            let out = w.wrangle().expect("faultless wrangle"); // lint-allow: experiment fixture
            best = best.min(t.elapsed().as_secs_f64());
            let bytes = out.metrics.counts.get("scan.bytes").copied().unwrap_or(0);
            let rewrites = w.plan_program().map_or(0, |p| p.rewrites.len());
            result = Some((fingerprint(&out.table), bytes, rewrites));
        }
        let (fp, bytes, rewrites) = result.expect("at least one rep"); // lint-allow: experiment fixture
        (best, fp, bytes, rewrites)
    };
    let (naive_s, naive_fp, naive_bytes, _) = run(OptMode::Naive);
    let (opt_s, opt_fp, opt_bytes, rewrites) = run(OptMode::Optimized);
    SweepRow {
        sources: num_sources,
        naive_s,
        opt_s,
        naive_bytes,
        opt_bytes,
        rewrites,
        identical: naive_fp == opt_fp,
    }
}

/// The clean naive IR as the wrangler actually lowered it for this fleet.
fn lowered_naive_ir(num_sources: usize) -> wrangler_plan::PlanIr {
    let f = e16_fleet(num_sources);
    let mut w = build(&f, OptMode::Naive);
    w.wrangle().expect("clean wrangle"); // lint-allow: experiment fixture
    w.plan_program().expect("program recorded").naive.clone() // lint-allow: experiment fixture
}

fn main() {
    let counts_only = std::env::args().any(|a| a == "--counts");
    if counts_only {
        // Deterministic half only: counters plus the rewrite ledger of the
        // optimized 20-source run, byte-identical across runs.
        let f = e16_fleet(20);
        let mut w = build(&f, OptMode::Optimized);
        w.wrangle().expect("clean wrangle"); // lint-allow: experiment fixture
        print!("{}", w.metrics().render_counts());
        let ledger = plan_table(&w).expect("plan table"); // lint-allow: experiment fixture
        for r in 0..ledger.num_rows() {
            let cells: Vec<String> = (0..ledger.num_columns())
                .map(|c| ledger.get(r, c).unwrap().render()) // lint-allow: experiment fixture
                .collect();
            println!("rewrite: {}", cells.join(" | "));
        }
        return;
    }

    println!("E16: typed plan IR — static catch-rate + proof-carrying optimization");
    println!("(workload: category-filter (2 of 6 categories) + [sku,name,price]");
    println!(" projection, containment off so the scan barrier is down)\n");

    // --- Static catch-rate on the real lowered plan -------------------------
    let ir = lowered_naive_ir(10);
    let baseline = analyze(&ir);
    println!(
        "clean lowered plan: {} nodes, {} facts, {} error-grade findings (false positives)",
        ir.nodes.len(),
        baseline.facts.len(),
        baseline.report.errors().count()
    );
    let widths = [24, 7, 7, 9, 9];
    println!(
        "{}",
        header(&["plan defect class", "trials", "caught", "caught%", "runtime%"], &widths)
    );
    let classes = [
        (DefectClass::DeadColumnConsumed, Code::PlanDeadColumn),
        (DefectClass::LossyPushdown, Code::PlanLossyPushdown),
        (DefectClass::DuplicateMapWork, Code::PlanDuplicateMapWork),
    ];
    let mut catch = Vec::new();
    for (class, code) in classes {
        let mut trials = 0usize;
        let mut caught = 0usize;
        for k in 0..TRIALS {
            let inj_seed = SEED ^ ((class as u64) << 32) ^ k;
            let Some(bad) = inject_plan_defect(&ir, class, inj_seed) else {
                continue;
            };
            trials += 1;
            let report = analyze(&bad).report;
            if report.has_code(code) && !report.newly_versus(&baseline.report).is_empty() {
                caught += 1;
            }
        }
        println!(
            "{}",
            row(
                &[
                    class.name().to_string(),
                    trials.to_string(),
                    caught.to_string(),
                    format!("{:.0}", 100.0 * caught as f64 / trials.max(1) as f64),
                    // None of the plan classes raises any runtime error:
                    // execution happily fuses dead columns, filters lossy
                    // bindings and maps twice. Only the analyzer sees them.
                    "0".to_string(),
                ],
                &widths
            )
        );
        catch.push((class, trials, caught));
    }

    // --- Naive vs optimized sweep -------------------------------------------
    println!();
    let widths = [8, 9, 9, 8, 12, 12, 7, 9, 10];
    println!(
        "{}",
        header(
            &[
                "sources", "naive-ms", "opt-ms", "speedup", "naive-bytes", "opt-bytes",
                "bytes%", "rewrites", "identical"
            ],
            &widths
        )
    );
    let mut rows = Vec::new();
    for &n in &SWEEP {
        let r = sweep(n);
        println!(
            "{}",
            row(
                &[
                    r.sources.to_string(),
                    format!("{:.1}", 1e3 * r.naive_s),
                    format!("{:.1}", 1e3 * r.opt_s),
                    format!("{:.2}x", r.naive_s / r.opt_s),
                    r.naive_bytes.to_string(),
                    r.opt_bytes.to_string(),
                    format!(
                        "-{:.0}",
                        100.0 * (1.0 - r.opt_bytes as f64 / r.naive_bytes.max(1) as f64)
                    ),
                    r.rewrites.to_string(),
                    if r.identical { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        rows.push(r);
    }

    // --- Verdicts ------------------------------------------------------------
    let all_caught = catch.iter().all(|(_, t, c)| *t > 0 && t == c);
    let zero_fp = baseline.report.errors().count() == 0;
    let at40 = rows.last().expect("sweep ran"); // lint-allow: const fixture
    let speedup = at40.naive_s / at40.opt_s;
    let bytes_cut = 1.0 - at40.opt_bytes as f64 / at40.naive_bytes.max(1) as f64;
    let all_identical = rows.iter().all(|r| r.identical);
    let verdict_perf = speedup >= 1.2 || bytes_cut >= 0.30;
    println!(
        "\nverdict: plan classes {} statically (zero false positives: {}); outputs {} \
         byte-identical; at 40 sources speedup = {speedup:.2}x, bytes scanned cut by \
         {:.0}% — {} the >=1.2x-or->=30% bar",
        if all_caught { "all caught" } else { "NOT all caught" },
        if zero_fp { "yes" } else { "NO" },
        if all_identical { "all" } else { "NOT" },
        100.0 * bytes_cut,
        if verdict_perf { "clears" } else { "MISSES" },
    );

    // --- Machine-readable results -------------------------------------------
    let catch_json: Vec<String> = catch
        .iter()
        .map(|(class, t, c)| {
            format!(
                "{{\"class\":\"{}\",\"trials\":{t},\"caught\":{c}}}",
                class.name()
            )
        })
        .collect();
    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"sources\":{},\"naive_s\":{:.4},\"opt_s\":{:.4},\"naive_bytes\":{},\
                 \"opt_bytes\":{},\"rewrites\":{},\"identical\":{}}}",
                r.sources, r.naive_s, r.opt_s, r.naive_bytes, r.opt_bytes, r.rewrites, r.identical
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e16_plan_opt\",\"seed\":{SEED},\
         \"catch\":[{}],\"sweep\":[{}],\
         \"speedup_at_40\":{speedup:.3},\"bytes_cut_at_40\":{bytes_cut:.3}}}\n",
        catch_json.join(","),
        rows_json.join(",")
    );
    wrangler_bench::write_artifact("BENCH_e16.json", &json);

    println!("\nShape expected: every plan class is caught statically with zero runtime");
    println!("signal — these defects ship silently without the analyzer. The optimized");
    println!("path pushes the filter below mapping for every cell-exact source, shares");
    println!("one target profile across the fleet and skips dead fusion slots, so bytes");
    println!("scanned falls sharply and wall-clock follows; outputs stay byte-identical");
    println!("because every rewrite had to cite a fact proving it invisible.");
}
