//! E12 — static analysis of wrangling artifacts vs runtime failure (§4.2).
//!
//! Claim under test: a pre-flight static analyzer over mapping artifacts and
//! predicates catches realistic defect classes *before execution* — including
//! classes that never raise a runtime error at all and would otherwise
//! silently corrupt the product — while raising zero blocking findings on the
//! clean seed pipeline.
//!
//! Protocol: generate the standard 20-source fleet, derive every source's
//! mapping exactly as the pipeline does, and record each mapping's clean lint
//! baseline. Then, per defect class and per source, inject a seeded defect
//! and compare (a) whether the analyzer reports a finding *new versus the
//! clean baseline*, and (b) whether executing the corrupted artifact raises a
//! runtime `TableError`. Ill-typed predicates run the same protocol over a
//! seeded family of corrupted filter predicates evaluated against the target
//! schema. Everything is seeded: re-running this binary reproduces the table
//! byte for byte.

use wrangler_bench::{default_fleet_config, fleet, header, row, session, target_sample};
use wrangler_context::{Ontology, UserContext};
use wrangler_core::{ContainPolicy, OptMode};
use wrangler_lint::{
    check_mapping, check_predicate, corrupt_predicate, inject_mapping_defect, DefectClass,
    GateMode, Severity,
};
use wrangler_mapping::generate_mapping;
use wrangler_match::MatchConfig;
use wrangler_plan::{analyze, inject_plan_defect};
use wrangler_table::Expr;

struct ClassOutcome {
    trials: usize,
    caught_static: usize,
    deny_grade: usize,
    runtime_errors: usize,
}

fn main() {
    println!("E12: pre-flight static analysis vs runtime failure (20 sources, 200 products)");
    println!("(caught = analyzer reports a finding absent from the clean baseline;");
    println!(" deny = finding is error-grade, the Deny gate refuses execution;");
    println!(" runtime = executing the corrupted artifact raises a TableError)\n");

    let seed = 1206;
    let cfg = default_fleet_config();
    let f = fleet(&cfg, seed);
    let sample = target_sample(&f);
    let ont = Ontology::ecommerce();
    let match_cfg = MatchConfig::default();

    // Per-source mappings exactly as the pipeline generates them, plus their
    // clean lint baselines.
    let sources: Vec<_> = f.registry.iter().collect();
    let mappings: Vec<_> = sources
        .iter()
        .map(|s| generate_mapping(&s.table, sample.schema(), &sample, Some(&ont), &match_cfg))
        .collect();
    let baselines: Vec<_> = sources
        .iter()
        .zip(&mappings)
        .map(|(s, m)| check_mapping(m, s.table.schema()))
        .collect();

    // Clean-pipeline false-positive audit: per artifact, does the analyzer
    // raise anything error-grade? (Warnings are expected: messy-number
    // normalization *is* lossy, and the analyzer says so.)
    let clean_errors: usize = baselines.iter().map(|r| r.errors().count()).sum();
    let clean_warnings: usize = baselines
        .iter()
        .flat_map(|r| r.diagnostics())
        .filter(|d| d.severity == Severity::Warning)
        .count();
    println!(
        "clean seed pipeline: {} mappings, {} error-grade findings (false positives), \
         {} advisory warnings",
        mappings.len(),
        clean_errors,
        clean_warnings
    );

    // And end-to-end: the full session must pass the Deny gate.
    let mut w = session(&f, UserContext::balanced("e12")).with_lint_gate(GateMode::Deny);
    match w.wrangle() {
        Ok(out) => println!(
            "full wrangle under Deny gate: ok ({} entities, lint: {})\n",
            out.entities,
            out.lint.summary()
        ),
        Err(e) => println!("full wrangle under Deny gate: UNEXPECTED block: {e}\n"),
    }

    // Defect injection sweep: every class x every source with an injection
    // site, one seeded defect each.
    let widths = [22, 7, 7, 7, 8, 8, 9];
    println!(
        "{}",
        header(
            &["defect class", "trials", "caught", "deny", "caught%", "deny%", "runtime%"],
            &widths
        )
    );
    for class in DefectClass::MAPPING_CLASSES {
        let mut out = ClassOutcome {
            trials: 0,
            caught_static: 0,
            deny_grade: 0,
            runtime_errors: 0,
        };
        for (i, (s, m)) in sources.iter().zip(&mappings).enumerate() {
            let inj_seed = seed ^ ((class as u64) << 32) ^ (i as u64);
            let Some(bad) = inject_mapping_defect(m, s.table.schema(), class, inj_seed) else {
                continue;
            };
            out.trials += 1;
            let report = check_mapping(&bad, s.table.schema());
            let fresh = report.newly_versus(&baselines[i]);
            if !fresh.is_empty() {
                out.caught_static += 1;
            }
            if fresh.iter().any(|d| d.severity == Severity::Error) {
                out.deny_grade += 1;
            }
            if bad.apply(&s.table).is_err() {
                out.runtime_errors += 1;
            }
        }
        print_class(class.name(), &out, &widths);
    }

    // Ill-typed predicates: corrupt a family of clean filters over the target
    // schema, check statically, then evaluate row-wise against the sample.
    let clean_preds = [
        Expr::col("price").gt(Expr::lit(10.0)),
        Expr::col("brand").is_null().not(),
        Expr::col("name").trim().lower().eq(Expr::lit("widget")),
    ];
    let mut out = ClassOutcome {
        trials: 0,
        caught_static: 0,
        deny_grade: 0,
        runtime_errors: 0,
    };
    for (i, clean) in clean_preds.iter().enumerate() {
        let baseline = check_predicate(clean, sample.schema());
        for k in 0..8u64 {
            let inj_seed = seed ^ 0xe12_0000 ^ ((i as u64) << 8) ^ k;
            let Some(bad) = corrupt_predicate(clean, sample.schema(), inj_seed) else {
                continue;
            };
            out.trials += 1;
            let report = check_predicate(&bad, sample.schema());
            let fresh = report.newly_versus(&baseline);
            if !fresh.is_empty() {
                out.caught_static += 1;
            }
            if fresh.iter().any(|d| d.severity == Severity::Error) {
                out.deny_grade += 1;
            }
            let runtime_failed = match bad.bind(sample.schema()) {
                Err(_) => true,
                Ok(bound) => {
                    let mut rows = sample.iter_rows();
                    rows.any(|r| bound.eval_predicate(&r).is_err())
                }
            };
            if runtime_failed {
                out.runtime_errors += 1;
            }
        }
    }
    print_class("ill-typed-predicate", &out, &widths);

    // Plan-level defect classes: visible only to the *whole-plan* analyzer —
    // each individual mapping and predicate lints clean. Lower the real
    // session into the typed plan IR (with a filter + projection so liveness
    // and pushdown analyses have something to protect), take its clean
    // analysis as baseline, then inject each class under seeded variation.
    let plan_filter = Expr::col("category").eq(Expr::lit("electronics"));
    let mut pw = session(&f, UserContext::balanced("e12"))
        .with_contain_policy(ContainPolicy::off())
        .with_opt_mode(OptMode::Naive)
        .with_row_filter(plan_filter)
        .with_output_columns(vec!["sku".into(), "name".into(), "price".into()]);
    match pw.wrangle() {
        Ok(_) => {}
        Err(e) => println!("plan lowering wrangle: UNEXPECTED failure: {e}"),
    }
    let ir = pw
        .plan_program()
        .expect("wrangle records its plan program") // lint-allow: experiment fixture
        .naive
        .clone();
    let plan_baseline = analyze(&ir);
    println!(
        "\nwhole-plan analysis (lowered from the live session: {} nodes, {} facts): \
         {} error-grade findings on the clean plan",
        ir.nodes.len(),
        plan_baseline.facts.len(),
        plan_baseline.report.errors().count()
    );
    for class in DefectClass::PLAN_CLASSES {
        let mut out = ClassOutcome {
            trials: 0,
            caught_static: 0,
            deny_grade: 0,
            runtime_errors: 0,
        };
        for k in 0..8u64 {
            let inj_seed = seed ^ 0xe12_1000 ^ ((class as u64) << 32) ^ k;
            let Some(bad) = inject_plan_defect(&ir, class, inj_seed) else {
                continue;
            };
            out.trials += 1;
            let fresh = analyze(&bad).report.newly_versus(&plan_baseline.report);
            if !fresh.is_empty() {
                out.caught_static += 1;
            }
            if fresh.iter().any(|d| d.severity == Severity::Error) {
                out.deny_grade += 1;
            }
            // Deliberately no runtime probe: none of the plan classes raises
            // any error at execution time — a dead column fuses silently, a
            // lossy pushdown silently drops rows, duplicate map work merely
            // burns cycles. That asymmetry is the point of this section.
        }
        print_class(class.name(), &out, &widths);
    }

    println!("\nShape expected: every class is caught statically in 100% of trials.");
    println!("Out-of-range bindings are deny-grade and always fail at runtime too —");
    println!("static analysis merely moves the failure earlier. Arity corruption is");
    println!("deny-grade but fails at runtime only when an entry was *dropped*; an");
    println!("appended entry is silently ignored by the executor's zip. Dtype flips");
    println!("and unbind-all raise NO runtime error at all: without the analyzer they");
    println!("ship silently corrupted or empty columns. Ill-typed predicates fail per");
    println!("row at runtime; statically they are rejected before binding. The plan");
    println!("classes are invisible to per-artifact linting AND to runtime (0% runtime");
    println!("column): only the whole-plan analyzer over the typed IR sees them.");
}

fn print_class(name: &str, out: &ClassOutcome, widths: &[usize]) {
    let pct = |n: usize| {
        if out.trials == 0 {
            "n/a".to_string()
        } else {
            format!("{:.0}", 100.0 * n as f64 / out.trials as f64)
        }
    };
    println!(
        "{}",
        row(
            &[
                name.to_string(),
                out.trials.to_string(),
                out.caught_static.to_string(),
                out.deny_grade.to_string(),
                pct(out.caught_static),
                pct(out.deny_grade),
                pct(out.runtime_errors),
            ],
            widths
        )
    );
}
