//! E3 — the effort economics (§1: "data scientists spend from 50 to 80
//! percent of their time collecting and preparing unruly digital data").
//!
//! Claim under test: to reach a given quality target, automation +
//! pay-as-you-go feedback costs a small fraction of the manual-specification
//! effort, and the gap widens with fleet size.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::{Ontology, UserContext};
use wrangler_core::baseline::ManualEtl;
use wrangler_core::eval::score_against_truth;
use wrangler_feedback::{FeedbackItem, FeedbackTarget, Verdict};
use wrangler_sources::FleetConfig;
use wrangler_table::{DataType, Field, Schema, Table};

const EFFORT_PER_SPEC: f64 = 5.0; // writing one source spec
const EFFORT_PER_JUDGEMENT: f64 = 0.1; // one accept/reject click

fn main() {
    println!("E3: effort to reach quality targets (30 sources, 200 products)");
    println!("(effort units: 1 spec = {EFFORT_PER_SPEC}, 1 judgement = {EFFORT_PER_JUDGEMENT})\n");
    let cfg = FleetConfig {
        num_sources: 30,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, 33);

    // --- Manual: specify sources one at a time (in size order, as an expert
    // would), measuring yield after each spec.
    let target = Schema::new(vec![
        Field::new("sku", DataType::Str),
        Field::new("price", DataType::Float),
    ])
    .expect("schema");
    let ont = Ontology::ecommerce();
    let mut order: Vec<usize> = (0..f.registry.len()).collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse(
            f.registry
                .get(wrangler_sources::SourceId(i as u32))
                .unwrap()
                .table
                .num_rows(),
        )
    });
    let mut etl = ManualEtl::new(target, EFFORT_PER_SPEC);
    let tables: Vec<&Table> = f.registry.iter().map(|s| &s.table).collect();
    let mut manual_curve: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    for &i in &order {
        let s = f
            .registry
            .get(wrangler_sources::SourceId(i as u32))
            .unwrap();
        etl.specify_by_inspection(i, &s.table, &|col| {
            ont.resolve(col).and_then(|c| {
                let name = ont.concept(c).name.clone();
                ["sku", "price"].contains(&name.as_str()).then_some(name)
            })
        });
        let out = etl.run(&tables).expect("etl");
        let y = score_against_truth(&out, &f.truth, 0.005)
            .expect("score")
            .correct_price_yield;
        manual_curve.push((etl.effort_spent, y));
    }

    // --- Automated + feedback: zero-effort bootstrap, then judgements.
    let mut w = session(&f, UserContext::balanced("e3"));
    let out0 = w.wrangle().expect("wrangle");
    let price_attr = w.target().index_of("price").unwrap();
    let mut auto_curve: Vec<(f64, f64)> = Vec::new();
    let y0 = score_against_truth(&out0.table, &f.truth, 0.005)
        .unwrap()
        .correct_price_yield;
    auto_curve.push((0.0, y0));
    let mut effort = 0.0;
    let mut table = out0.table;
    for round in 0..6 {
        let mut given = 0;
        for rowi in 0..table.num_rows() {
            if given == 20 {
                break;
            }
            if let (Some(sku), Some(p)) = (
                table.get_named(rowi, "sku").unwrap().as_str(),
                table.get_named(rowi, "price").unwrap().as_f64(),
            ) {
                let correct = f.truth.price_is_correct(sku, p, 0.005);
                // The analyst samples rows round-robin by round to avoid
                // re-judging the same prefix forever.
                if (rowi + round * 37) % 3 == 0 {
                    w.give_feedback(FeedbackItem::expert(
                        FeedbackTarget::Value {
                            entity: rowi,
                            attr: price_attr,
                            value: None,
                        },
                        if correct {
                            Verdict::Positive
                        } else {
                            Verdict::Negative
                        },
                        EFFORT_PER_JUDGEMENT,
                    ));
                    effort += EFFORT_PER_JUDGEMENT;
                    given += 1;
                }
            }
        }
        let out = w.rewrangle().expect("rewrangle");
        table = out.table;
        let y = score_against_truth(&table, &f.truth, 0.005)
            .unwrap()
            .correct_price_yield;
        auto_curve.push((effort, y));
    }

    // --- Report: effort needed to reach each target.
    let widths = [8, 16, 18, 8];
    println!(
        "{}",
        header(
            &["target", "manual_effort", "auto_effort", "ratio"],
            &widths
        )
    );
    for target_y in [0.3, 0.4, 0.5, 0.6] {
        let manual = manual_curve
            .iter()
            .find(|(_, y)| *y >= target_y)
            .map(|(e, _)| *e);
        let auto = auto_curve
            .iter()
            .find(|(_, y)| *y >= target_y)
            .map(|(e, _)| *e);
        let ratio = match (manual, auto) {
            (Some(m), Some(a)) if a > 0.0 => format!("{:.0}x", m / a),
            (Some(_), Some(_)) => "inf".to_string(),
            _ => "-".to_string(),
        };
        println!(
            "{}",
            row(
                &[
                    format!("{target_y:.1}"),
                    manual.map_or("unreached".into(), |e| format!("{e:.1}")),
                    auto.map_or("unreached".into(), |e| format!("{e:.1}")),
                    ratio,
                ],
                &widths
            )
        );
    }
    println!(
        "\nmanual curve  (effort, yield): {:?}",
        manual_curve
            .iter()
            .map(|(e, y)| (format!("{e:.0}"), format!("{y:.2}")))
            .collect::<Vec<_>>()
    );
    println!(
        "auto curve    (effort, yield): {:?}",
        auto_curve
            .iter()
            .map(|(e, y)| (format!("{e:.1}"), format!("{y:.2}")))
            .collect::<Vec<_>>()
    );
    println!("\nShape expected: automation reaches every target at a fraction of the");
    println!("manual effort (the bootstrap is free; feedback only polishes).");
}
