//! E10 — explicit, calibrated uncertainty (§4.2).
//!
//! Claims under test:
//! (a) the system's delivered confidences are informative: reliability
//!     diagram buckets of higher confidence contain more correct prices,
//!     Brier score beats the uninformed 0.25 baseline;
//! (b) combining more evidence tightens beliefs (correct hypotheses drift up,
//!     wrong ones down);
//! (c) unreliable feedback is discounted: low-reliability judgements move
//!     beliefs less than expert judgements.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_sources::FleetConfig;
use wrangler_uncertainty::calibration::{
    brier_score, expected_calibration_error, reliability_diagram, Prediction,
};
use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};

fn main() {
    // ---- (a) Calibration of delivered price confidences. -------------------
    println!("E10a: calibration of fused-price confidence");
    let cfg = FleetConfig {
        num_sources: 25,
        error_rate: (0.05, 0.35),
        ..default_fleet_config()
    };
    let mut preds: Vec<Prediction> = Vec::new();
    for seed in [5u64, 6, 7] {
        let f = fleet(&cfg, seed);
        let mut w = session(&f, UserContext::completeness_first())
            .with_fusion_strategy(wrangler_fusion::Strategy::TrustAndFreshness { half_life: 4.0 });
        let out = w.wrangle().expect("wrangle");
        for r in 0..out.table.num_rows() {
            let (sku, price, conf) = (
                out.table.get_named(r, "sku").unwrap().clone(),
                out.table.get_named(r, "price").unwrap().clone(),
                out.table
                    .get_named(r, "_confidence")
                    .unwrap()
                    .as_f64()
                    .unwrap_or(0.0),
            );
            if let (Some(sku), Some(p)) = (sku.as_str(), price.as_f64()) {
                if f.truth.index_of(sku).is_some() {
                    preds.push(Prediction {
                        p: conf,
                        outcome: f.truth.price_is_correct(sku, p, 0.005),
                    });
                }
            }
        }
    }
    let widths = [12, 8, 11, 10];
    println!(
        "{}",
        header(&["conf_bucket", "n", "mean_conf", "observed"], &widths)
    );
    for b in reliability_diagram(&preds, 5) {
        if b.count == 0 {
            continue;
        }
        println!(
            "{}",
            row(
                &[
                    format!("[{:.1},{:.1})", b.lo, b.hi),
                    b.count.to_string(),
                    format!("{:.3}", b.mean_predicted),
                    format!("{:.3}", b.observed),
                ],
                &widths
            )
        );
    }
    println!(
        "brier {:.3} (uninformed 0.25), ECE {:.3}, n={}\n",
        brier_score(&preds),
        expected_calibration_error(&preds, 5),
        preds.len()
    );

    // ---- (b) Evidence accumulation separates true from false. --------------
    println!("E10b: belief trajectories under accumulating evidence");
    let widths = [10, 12, 12];
    println!(
        "{}",
        header(&["evidence", "true_hyp", "false_hyp"], &widths)
    );
    let mut true_b = Belief::from_prior(0.5);
    let mut false_b = Belief::from_prior(0.5);
    let mut rng = wrangler_uncertainty::worlds::XorShift64::new(17);
    for k in [0usize, 1, 2, 4, 8, 16] {
        while true_b.total_evidence() < k as u32 {
            // Noisy signals: mostly supporting for the true hypothesis,
            // mostly refuting for the false one.
            let s_true = 0.55 + 0.35 * rng.next_f64();
            let s_false = 0.45 - 0.35 * rng.next_f64();
            true_b.update(&Evidence::from_score(
                EvidenceKind::InstanceSimilarity,
                s_true,
            ));
            false_b.update(&Evidence::from_score(
                EvidenceKind::InstanceSimilarity,
                s_false,
            ));
        }
        println!(
            "{}",
            row(
                &[
                    k.to_string(),
                    format!("{:.3}", true_b.probability()),
                    format!("{:.3}", false_b.probability()),
                ],
                &widths
            )
        );
    }

    // ---- (c) Reliability discounting. ---------------------------------------
    println!("\nE10c: one negative judgement at different reliabilities");
    let widths = [12, 14];
    println!("{}", header(&["reliability", "belief_after"], &widths));
    for rel in [1.0, 0.8, 0.5, 0.2, 0.0] {
        let b = Belief::from_prior(0.7)
            .with(&Evidence::vote(EvidenceKind::CrowdFeedback, false, 0.9).discounted(rel));
        println!(
            "{}",
            row(
                &[format!("{rel:.1}"), format!("{:.3}", b.probability())],
                &widths
            )
        );
    }
    println!("\nShape expected: higher-confidence buckets are more often correct");
    println!("(monotone observed column, Brier < 0.25); evidence separates the");
    println!("hypotheses monotonically; lower reliability moves belief less.");
}
