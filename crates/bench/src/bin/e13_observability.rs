//! E13 — pipeline observability: overhead and stage attribution (§4.2).
//!
//! Claim under test: the `wrangler-obs` telemetry layer is cheap enough to
//! leave on (<5% wall-clock overhead versus `ObsMode::Off` on the 40-source
//! workload) and informative enough to attribute where a wrangle's time goes
//! (direct-child stage spans cover ≥95% of the root span's wall clock).
//!
//! Protocol: per fleet size, build a fresh session and wrangle once with
//! telemetry on, recording per-stage wall-clock shares from the span tree.
//! For the overhead measurement, run `REPS` fresh sessions per mode on the
//! largest fleet and compare **best-of-REPS** wall clock On vs Off — the
//! estimator E14 uses. The median was noisy enough on this workload to
//! report a *negative* overhead (-7.6% in one run): scheduling jitter per
//! rep exceeds the actual telemetry cost, and the minimum is the standard
//! low-noise estimator of a run's intrinsic cost. Timings are
//! wall-clock and therefore vary run to run; the *count* half of the metrics
//! report is a pure function of the seeded data flow. `--counts` prints only
//! that half, and CI double-runs it to assert byte-identical output. A full
//! run also writes `BENCH_e13.json` with the machine-readable results.
//!
//! `lint-allow:` exemptions here follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::{ObsMode, Wrangler};
use wrangler_sources::FleetConfig;

const SEED: u64 = 1301;
const FLEET_SIZES: [usize; 3] = [10, 20, 40];
const REPS: usize = 5;

/// The pipeline stages in execution order (direct children of "wrangle").
const STAGES: [&str; 9] = [
    "select",
    "acquire",
    "map_generate",
    "preflight",
    "map_apply",
    "union",
    "er",
    "fuse",
    "assemble",
];

fn build(num_sources: usize, mode: ObsMode) -> Wrangler {
    let cfg = FleetConfig {
        num_sources,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, SEED);
    session(&f, UserContext::balanced("e13")).with_obs_mode(mode)
}

/// Best (minimum) wall-clock seconds of `REPS` fresh wrangles under `mode`.
/// Best-of-N, as E14: the minimum estimates intrinsic cost; the median still
/// carries enough scheduler jitter to swamp a few-percent overhead signal.
fn best_wall(num_sources: usize, mode: ObsMode) -> f64 {
    (0..REPS)
        .map(|_| {
            let mut w = build(num_sources, mode);
            let t = Instant::now();
            w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let counts_only = std::env::args().any(|a| a == "--counts");
    if counts_only {
        // Deterministic half only: counts and gauges of the largest workload,
        // byte-identical across runs of the same build on the same machine.
        let mut w = build(*FLEET_SIZES.last().expect("const non-empty"), ObsMode::On); // lint-allow: const fixture
        w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
        print!("{}", w.metrics().render_counts());
        return;
    }

    println!("E13: observability overhead + per-stage attribution (200 products)");
    println!("(share% = stage span wall / root span wall from the telemetry span tree;");
    println!(" coverage% = sum of direct-child stage shares — unattributed time is");
    println!(" span bookkeeping and inter-stage glue)\n");

    // --- Per-stage attribution across fleet sizes ---------------------------
    let widths = [7, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 9];
    let mut names = vec!["sources", "wall_ms"];
    names.extend(STAGES.iter().map(|s| match *s {
        "map_generate" => "map_gen",
        "map_apply" => "map_app",
        "preflight" => "preflt",
        "assemble" => "asm",
        other => other,
    }));
    names.push("coverage%");
    println!("{}", header(&names, &widths));

    let mut fleets_json = Vec::new();
    for &n in &FLEET_SIZES {
        let mut w = build(n, ObsMode::On);
        w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
        let m = w.metrics();
        let root_ns = m.timings.get("wrangle").map_or(0, |t| t.nanos);
        let share = |stage: &str| -> f64 {
            let ns = m.timings.get(&format!("wrangle/{stage}")).map_or(0, |t| t.nanos);
            if root_ns == 0 {
                0.0
            } else {
                ns as f64 / root_ns as f64
            }
        };
        let coverage = m.stage_coverage("wrangle");
        let mut cells = vec![
            n.to_string(),
            format!("{:.1}", root_ns as f64 / 1e6),
        ];
        cells.extend(STAGES.iter().map(|s| format!("{:.1}", 100.0 * share(s))));
        cells.push(format!("{:.1}", 100.0 * coverage));
        println!("{}", row(&cells, &widths));
        let stage_json = STAGES
            .iter()
            .map(|s| format!("\"{s}\":{:.4}", share(s)))
            .collect::<Vec<_>>()
            .join(",");
        fleets_json.push(format!(
            "{{\"sources\":{n},\"wall_ms\":{:.3},\"coverage\":{:.4},\"stage_shares\":{{{stage_json}}}}}",
            root_ns as f64 / 1e6,
            coverage
        ));
    }

    // --- Overhead: On vs Off on the largest workload ------------------------
    let big = *FLEET_SIZES.last().expect("const non-empty"); // lint-allow: const fixture
    let off = best_wall(big, ObsMode::Off);
    let on = best_wall(big, ObsMode::On);
    let overhead = if off > 0.0 { on / off - 1.0 } else { 0.0 };
    println!(
        "\noverhead at {big} sources (best of {REPS} fresh sessions):\n  \
         off = {:.1} ms, on = {:.1} ms, overhead = {:+.2}%  (budget: <5%)",
        off * 1e3,
        on * 1e3,
        overhead * 100.0
    );
    let verdict_overhead = overhead < 0.05;
    let verdict_coverage = {
        let mut w = build(big, ObsMode::On);
        w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
        w.metrics().stage_coverage("wrangle") >= 0.95
    };
    println!(
        "verdict: overhead {} budget, stage coverage {} 95% floor",
        if verdict_overhead { "within" } else { "OVER" },
        if verdict_coverage { "meets" } else { "BELOW" },
    );

    // --- Machine-readable results -------------------------------------------
    let mut w = build(big, ObsMode::On);
    w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
    let json = format!(
        "{{\"experiment\":\"e13_observability\",\"seed\":{SEED},\
         \"overhead\":{{\"off_s\":{off:.6},\"on_s\":{on:.6},\"fraction\":{overhead:.6}}},\
         \"fleets\":[{}],\"metrics\":{}}}\n",
        fleets_json.join(","),
        w.metrics().to_json()
    );
    wrangler_bench::write_artifact("BENCH_e13.json", &json);

    println!("\nShape expected: er dominates (pairwise matching over the whole union),");
    println!("fuse is the runner-up, and every other stage stays single-digit — so any");
    println!("future ER optimisation is where the wall-clock actually is.");
    println!("Counts and gauges are seeded-deterministic; re-run with --counts and diff.");
}
