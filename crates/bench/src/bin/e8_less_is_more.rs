//! E8 — "Less is more" source selection (Dong, Saha, Srivastava \[16\], via
//! §2.1's call for cost-aware compromises).
//!
//! Claim under test: under an accuracy/cost-sensitive context, integrating
//! MORE sources eventually *hurts* — marginal-gain selection stops near the
//! utility peak, below the all-sources point, and its true quality matches
//! or beats integrating everything.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::eval::score_against_truth;
use wrangler_sources::selection::{set_quality, GainStep};
use wrangler_sources::{select_marginal_gain, FleetConfig, SourceEstimate};

fn main() {
    println!("E8: marginal-gain source selection over a quality-spread fleet");
    println!("(60 sources: 1/3 good, 1/3 mediocre, 1/3 junk; accuracy-first context)\n");
    let cfg = FleetConfig {
        num_sources: 60,
        coverage: (0.2, 0.7),
        error_rate: (0.01, 0.5), // wide quality spread
        staleness: (0, 14),
        access_cost: (0.2, 1.0),
        ..default_fleet_config()
    };
    let f = fleet(&cfg, 8);
    let user = UserContext::accuracy_first().with_budget(30.0);

    // Oracle estimates (the selection-quality question, isolated from the
    // estimation question): coverage/accuracy from the latents.
    let estimates: Vec<SourceEstimate> = f
        .registry
        .iter()
        .zip(&f.latents)
        .map(|(s, lat)| SourceEstimate {
            id: s.meta.id,
            coverage: lat.coverage,
            accuracy: (1.0 - lat.error_rate) * if lat.staleness > 6 { 0.7 } else { 1.0 },
            age: f.truth.now.saturating_sub(s.meta.last_updated),
            cost: s.meta.access_cost,
            relevance: if lat.irrelevant { 0.0 } else { 1.0 },
            availability: 1.0,
        })
        .collect();

    let (selected, trace) = select_marginal_gain(&estimates, &user);
    let widths = [6, 9, 9, 9];
    println!("{}", header(&["k", "utility", "gain", "cost"], &widths));
    for (
        k,
        GainStep {
            utility,
            gain,
            cost,
            ..
        },
    ) in trace.iter().enumerate()
    {
        println!(
            "{}",
            row(
                &[
                    (k + 1).to_string(),
                    format!("{utility:.4}"),
                    format!("{gain:+.4}"),
                    format!("{cost:.1}"),
                ],
                &widths
            )
        );
    }
    // Utility of taking everything relevant.
    let all: Vec<&SourceEstimate> = estimates.iter().filter(|e| e.relevance > 0.0).collect();
    let all_utility = user.utility(&set_quality(&all, &user));
    println!(
        "\nselected {} of {} sources; all-sources utility would be {:.4} (peak {:.4})",
        selected.len(),
        estimates.len(),
        all_utility,
        trace.last().map(|s| s.utility).unwrap_or(0.0)
    );

    // End-to-end check: run the real pipeline with marginal-gain (plan
    // default for accuracy-first) vs forced all-sources, compare true yield.
    let mut w_sel = session(&f, user.clone());
    let out_sel = w_sel.wrangle().expect("wrangle");
    let s_sel = score_against_truth(&out_sel.table, &f.truth, 0.005).expect("score");
    let mut w_all = session(
        &f,
        UserContext::completeness_first().with_budget(f64::INFINITY),
    );
    let out_all = w_all.wrangle().expect("wrangle");
    let s_all = score_against_truth(&out_all.table, &f.truth, 0.005).expect("score");
    println!(
        "\nend-to-end: selected={} sources -> price_acc {:.3}; all={} sources -> price_acc {:.3}",
        out_sel.selected_sources.len(),
        s_sel.price_accuracy,
        out_all.selected_sources.len(),
        s_all.price_accuracy
    );
    println!("\nShape expected: marginal gains shrink towards zero; selection stops");
    println!("well below 60 sources; all-sources utility < peak; end-to-end");
    println!("price accuracy of the selected subset beats integrating everything.");
}
