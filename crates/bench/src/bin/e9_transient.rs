//! E9 — fusing transient data (§3.1).
//!
//! "These techniques ... lean heavily on the assumption that correct facts
//! occur frequently (instance-based redundancy). For data wrangling, the
//! need to support ... highly transient information (e.g., pricing) means
//! that user requirements need to be made explicit..."
//!
//! Claim under test: majority-vote fusion (the KBC baseline) degrades as
//! source staleness grows — stale sources form wrong majorities for prices —
//! while trust+freshness fusion holds up; on *stable* attributes (brand) the
//! two are comparable. The crossover in staleness is the measured shape.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::eval::score_against_truth;
use wrangler_fusion::Strategy;
use wrangler_sources::FleetConfig;

fn main() {
    println!("E9: fusion strategies on transient prices, by staleness spread");
    println!("(20 sources, 200 products, price changes ~12%/tick; accuracy at 0.5%)\n");
    let widths = [11, 10, 10, 10, 10];
    println!(
        "{}",
        header(
            &["staleness", "majority", "latest", "trust", "trust+fresh"],
            &widths
        )
    );
    let strategies: Vec<(&str, Strategy)> = vec![
        ("majority", Strategy::MajorityVote),
        ("latest", Strategy::Latest),
        ("trust", Strategy::TrustWeighted),
        (
            "trust+fresh",
            Strategy::TrustAndFreshness { half_life: 4.0 },
        ),
    ];
    for &max_stale in &[0u64, 4, 8, 12, 16] {
        let cfg = FleetConfig {
            num_sources: 20,
            staleness: (0, max_stale),
            error_rate: (0.02, 0.15),
            ..default_fleet_config()
        };
        let mut cells = vec![format!("(0,{max_stale})")];
        for (_, strat) in &strategies {
            let seeds = [91u64, 92, 93];
            let mut acc = 0.0;
            for &seed in &seeds {
                let f = fleet(&cfg, seed);
                let mut w =
                    session(&f, UserContext::completeness_first()).with_fusion_strategy(*strat);
                // Re-register sources (with_fusion_strategy consumed the value
                // before sources were added inside session: session already
                // added them; the builder preserves state).
                let out = w.wrangle().expect("wrangle");
                let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
                acc += s.price_accuracy / seeds.len() as f64;
            }
            cells.push(format!("{acc:.3}"));
        }
        println!("{}", row(&cells, &widths));
    }
    println!("\nShape expected: all strategies tie at staleness 0; majority decays");
    println!("fastest as stale sources outvote fresh ones; trust+freshness (and");
    println!("latest) stay highest, with trust+freshness more robust to noise");
    println!("than latest (a single fresh-but-wrong source fools `latest`).");
}
