//! E2 — user contexts shape the wrangle (§2.1, Example 2).
//!
//! Claim under test: the same fleet wrangled under different declarative
//! user contexts yields different, better-fitting results — accuracy-first
//! delivers fewer but more accurate values; completeness-first delivers more
//! values at lower accuracy; each context's own result maximizes *its own*
//! utility.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::eval::score_against_truth;
use wrangler_sources::FleetConfig;
use wrangler_table::Table;

/// Fraction of non-null price cells delivered.
fn delivered(table: &Table) -> f64 {
    let col = table.column_named("price").expect("price column");
    let non_null = col.iter().filter(|v| !v.is_null()).count();
    non_null as f64 / col.len().max(1) as f64
}

fn main() {
    println!("E2: one fleet, three user contexts (40 sources, 200 products)\n");
    let cfg = FleetConfig {
        num_sources: 40,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, 2);

    let contexts = vec![
        ("accuracy-first", UserContext::accuracy_first()),
        ("completeness-first", UserContext::completeness_first()),
        ("balanced", UserContext::balanced("balanced")),
    ];

    let widths = [20, 8, 9, 10, 9, 8, 9];
    println!(
        "{}",
        header(
            &[
                "context",
                "sources",
                "delivered",
                "price_acc",
                "yield",
                "own_u",
                "entities"
            ],
            &widths
        )
    );
    let mut results = Vec::new();
    for (name, user) in contexts {
        let mut w = session(&f, user.clone());
        let out = w.wrangle().expect("wrangle");
        let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    out.selected_sources.len().to_string(),
                    format!("{:.2}", delivered(&out.table)),
                    format!("{:.2}", s.price_accuracy),
                    format!("{:.2}", s.correct_price_yield),
                    format!("{:.3}", out.utility),
                    out.entities.to_string(),
                ],
                &widths
            )
        );
        results.push((name, user, out));
    }

    // Cross-utility check: each context prefers its own result.
    println!("\ncross-utility matrix (row context scoring column result):");
    let widths2 = [20, 16, 16, 16];
    println!(
        "{}",
        header(
            &["context \\ result", "accuracy", "completeness", "balanced"],
            &widths2
        )
    );
    for (rname, user, _) in &results {
        let mut cells = vec![rname.to_string()];
        for (_, _, out) in &results {
            cells.push(format!("{:.3}", user.utility(&out.quality)));
        }
        println!("{}", row(&cells, &widths2));
    }
    println!("\nShape expected: delivered(completeness) > delivered(accuracy);");
    println!("price_acc(accuracy) > price_acc(completeness): the declarative");
    println!("context, not a hard-wired workflow, sets the trade-off.");
}
