//! E7 — scalability (§4.3).
//!
//! Claims under test:
//! (a) blocking makes ER scale: candidate pairs grow ~linearly with records
//!     vs quadratically for all-pairs, at near-identical recall;
//! (b) feedback-induced reprocessing is incremental: work after a feedback
//!     item is a small fraction of a full re-wrangle, and the fraction
//!     shrinks with scale (Example 5's closing requirement).

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_feedback::{FeedbackItem, FeedbackTarget, RoutingMode, Verdict};
use wrangler_resolve::{
    candidates_blocked, candidates_naive, cluster_pairs, match_pairs, ErConfig, FieldSim, SimKind,
};
use wrangler_sources::FleetConfig;
use wrangler_table::Table;

fn er_table(n_products: usize, n_sources: usize, seed: u64) -> (Table, usize) {
    let cfg = FleetConfig {
        num_products: n_products,
        num_sources: n_sources,
        rename_rate: 0.0,
        cryptic_rate: 0.0,
        drop_rate: 0.0,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, seed);
    // Stack all source tables (identical canonical schema here).
    let mut out = f.registry.iter().next().unwrap().table.clone();
    for s in f.registry.iter().skip(1) {
        out = wrangler_table::ops::union(&out, &s.table).expect("same schema");
    }
    (out, n_products)
}

fn er_cfg() -> ErConfig {
    ErConfig {
        fields: vec![
            FieldSim {
                column: "sku".into(),
                weight: 2.0,
                kind: SimKind::Exact,
            },
            FieldSim {
                column: "name".into(),
                weight: 3.0,
                kind: SimKind::Text,
            },
            FieldSim {
                column: "brand".into(),
                weight: 1.0,
                kind: SimKind::Text,
            },
        ],
        threshold: 0.8,
    }
}

fn main() {
    println!("E7a: ER candidate generation — naive vs blocking");
    let widths = [8, 12, 12, 9, 9, 10, 10];
    println!(
        "{}",
        header(
            &[
                "rows",
                "naive_pairs",
                "block_pairs",
                "naive_s",
                "block_s",
                "n_clusters",
                "b_clusters"
            ],
            &widths
        )
    );
    for &(products, sources) in &[(100usize, 5usize), (200, 10), (400, 15), (800, 20)] {
        let (t, _) = er_table(products, sources, 7);
        let n = t.num_rows();
        let cfg = er_cfg();

        // The naive arm is quadratic; above ~4k rows we report the pair
        // count (exact) and skip the scoring (the point is already made).
        let run_naive = n <= 4000;
        let start = Instant::now();
        let naive = candidates_naive(n);
        let (naive_clusters, naive_s) = if run_naive {
            let naive_pairs = match_pairs(&t, &naive, &cfg).expect("match");
            let c = cluster_pairs(n, naive_pairs.iter().map(|p| (p.i, p.j))).len();
            (
                c.to_string(),
                format!("{:.2}", start.elapsed().as_secs_f64()),
            )
        } else {
            ("-".to_string(), "-".to_string())
        };

        let start = Instant::now();
        let blocked = candidates_blocked(&t, "name").expect("block");
        let blocked_pairs = match_pairs(&t, &blocked, &cfg).expect("match");
        let blocked_clusters = cluster_pairs(n, blocked_pairs.iter().map(|p| (p.i, p.j))).len();
        let block_s = start.elapsed().as_secs_f64();

        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    naive.len().to_string(),
                    blocked.len().to_string(),
                    naive_s,
                    format!("{block_s:.2}"),
                    naive_clusters,
                    blocked_clusters.to_string(),
                ],
                &widths
            )
        );
    }

    println!("\nE7b: incremental vs full reprocessing after one feedback item");
    let widths = [10, 12, 12, 10, 12, 12];
    println!(
        "{}",
        header(
            &[
                "sources",
                "full_units",
                "inc_units",
                "fraction",
                "full_ms",
                "inc_ms"
            ],
            &widths
        )
    );
    for &n_sources in &[10usize, 20, 40] {
        let cfg = FleetConfig {
            num_sources: n_sources,
            ..default_fleet_config()
        };
        let f = fleet(&cfg, 70 + n_sources as u64);
        let mut w = session(&f, UserContext::balanced("e7"));
        w.routing = RoutingMode::Siloed; // isolate the slot-repair path
        let start = Instant::now();
        let out = w.wrangle().expect("wrangle");
        let full_ms = start.elapsed().as_secs_f64() * 1000.0;
        let full = w.working.work;
        let price_attr = w.target().index_of("price").unwrap();
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Value {
                entity: 0,
                attr: price_attr,
                value: None,
            },
            Verdict::Negative,
            1.0,
        ));
        let before = w.working.work;
        let start = Instant::now();
        let _ = w.rewrangle().expect("rewrangle");
        let inc_ms = start.elapsed().as_secs_f64() * 1000.0;
        let inc = w.working.work - before;
        println!(
            "{}",
            row(
                &[
                    n_sources.to_string(),
                    full.total().to_string(),
                    inc.total().to_string(),
                    format!("{:.5}", inc.total() as f64 / full.total().max(1) as f64),
                    format!("{full_ms:.0}"),
                    format!("{inc_ms:.1}"),
                ],
                &widths
            )
        );
        let _ = out;
    }
    println!("\nShape expected: naive pairs grow ~n² while blocked pairs grow ~n·b");
    println!("with (near-)identical clusters; incremental work is a vanishing");
    println!("fraction of a full wrangle and the fraction shrinks with scale.");
}
