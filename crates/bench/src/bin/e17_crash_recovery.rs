//! E17 — crash-resilient wrangling: kill the process at every stage seam,
//! resume byte-identically (§2.2 "reuse partial results", §4.2).
//!
//! A long wrangle over many sources is exactly the kind of job that dies:
//! OOM killers, preemption, deploys. Claim under test: with a
//! [`CheckpointStore`] attached, every stage seam persists a content-keyed,
//! checksummed snapshot (atomic temp + rename), and a *fresh process*
//! pointed at the same store resumes from the deepest valid prefix and
//! delivers a result byte-identical (`f64::to_bits`, canonical table hash)
//! to a never-interrupted run — trust, breaker and quarantine state
//! included. Torn or bit-flipped records are detected by checksum and
//! recomputed, never loaded.
//!
//! Protocol: the binary re-execs itself (`current_exe`) as a child per
//! (crash site, seed); the child runs the same seeded 40-source wrangle
//! with `CrashPolicy::exit_at(site, 86)` armed and dies mid-flight at the
//! seam (`MidEr` dies *inside* entity resolution). The parent then builds a
//! fresh session over the same store, resumes, and compares the full
//! outcome fingerprint against the cold run for that seed. The timing
//! section measures resume-after-post-ER-crash against cold wall-clock
//! (ER dominates the pass, so replaying its checkpoint should cut the bulk
//! of it). The corruption section corrupts every record in a completed
//! store — truncation and bit flips — and demands zero loads. `--counts`
//! prints only the deterministic half (resumed-run counters + table hash)
//! and CI double-runs it to assert byte-identical output. A full run
//! writes `BENCH_e17.json`.
//!
//! `lint-allow:` exemptions follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::{
    scratch_dir, CheckpointStore, CrashPolicy, CrashSite, WrangleOutcome, Wrangler,
};
use wrangler_sources::{SourceId, SyntheticFleet};
use wrangler_table::wire;

const SEED: u64 = 1706;
const SEEDS: u64 = 8;
const CRASH_EXIT: i32 = 86;
const TIMING_REPS: usize = 3;

fn e17_fleet(trial: u64) -> SyntheticFleet {
    let mut cfg = default_fleet_config();
    cfg.num_products = 100;
    cfg.num_sources = 40;
    fleet(&cfg, SEED.wrapping_add(trial))
}

fn build(f: &SyntheticFleet) -> Wrangler {
    session(f, UserContext::completeness_first()).with_er_workers(4)
}

/// Everything "byte-identical" covers: the delivered table plus the
/// session's post-pass trust/breaker/containment state.
fn fingerprint(w: &Wrangler, out: &WrangleOutcome) -> (u64, String) {
    let state = format!(
        "sel={:?} skip={:?} ent={} util={} cost={} trust={:?} breakers={:?} contain={}",
        out.selected_sources,
        out.skipped_sources,
        out.entities,
        out.utility.to_bits(),
        out.cost_spent.to_bits(),
        (0..w.num_sources())
            .map(|i| w.source_trust(SourceId(i as u32)).to_bits())
            .collect::<Vec<_>>(),
        (0..w.num_sources())
            .map(|i| w.acquisition.breaker_state(i))
            .collect::<Vec<_>>(),
        out.containment.render(),
    );
    (wire::table_hash(&out.table), state)
}

fn fresh_dir(label: &str) -> std::path::PathBuf {
    let dir = scratch_dir(label);
    let _ = std::fs::remove_dir_all(&dir); // lint-allow: scratch reset
    dir
}

/// Child half: run the seeded wrangle against the given store with a
/// process-exit crash armed. Reaching the site calls `process::exit` — no
/// unwinding, no destructors, exactly like a kill. Completing means the
/// site was never reached (a harness bug): exit 0 so the parent notices.
fn child_main(site: &str, dir: &str, trial: u64) {
    let site = CrashSite::parse(site).expect("valid crash site name"); // lint-allow: harness fixture
    let f = e17_fleet(trial);
    let store = CheckpointStore::open(Path::new(dir)).expect("open store"); // lint-allow: harness fixture
    let mut w = build(&f)
        .with_checkpoint_store(store)
        .with_crash_policy(CrashPolicy::exit_at(site, CRASH_EXIT));
    let _ = w.wrangle();
    std::process::exit(0);
}

/// Spawn ourselves as a crash child for (site, trial) against `dir`.
/// Returns true when the child actually died at the seam.
fn spawn_crash(site: CrashSite, dir: &Path, trial: u64) -> bool {
    let exe = std::env::current_exe().expect("current_exe"); // lint-allow: harness fixture
    let status = std::process::Command::new(exe)
        .env("E17_CHILD_SITE", site.name())
        .env("E17_CHILD_DIR", dir.as_os_str())
        .env("E17_CHILD_TRIAL", trial.to_string())
        .status()
        .expect("spawn crash child"); // lint-allow: harness fixture
    status.code() == Some(CRASH_EXIT)
}

/// Resume from `dir` with a fresh session (the "new process" half lives in
/// the parent: a brand-new `Wrangler` built from the same inputs).
fn resume_from(f: &SyntheticFleet, dir: &Path) -> (Wrangler, WrangleOutcome, u64) {
    let store = CheckpointStore::open(dir).expect("open store"); // lint-allow: harness fixture
    let mut w = build(f).with_checkpoint_store(store);
    let out = w.resume().expect("resume completes"); // lint-allow: harness fixture
    let hits = out
        .metrics
        .counts
        .iter()
        .filter(|(k, _)| k.starts_with("ckpt.") && k.ends_with(".hits"))
        .map(|(_, v)| *v)
        .sum();
    (w, out, hits)
}

fn main() {
    // Child re-exec: crash at the named seam and never return.
    if let (Ok(site), Ok(dir), Ok(trial)) = (
        std::env::var("E17_CHILD_SITE"),
        std::env::var("E17_CHILD_DIR"),
        std::env::var("E17_CHILD_TRIAL"),
    ) {
        child_main(&site, &dir, trial.parse().expect("trial number")); // lint-allow: harness fixture
        return;
    }

    if std::env::args().any(|a| a == "--counts") {
        // Deterministic half: crash in-process at the union seam (panic,
        // hook silenced), resume with a fresh session, print the resumed
        // run's counters + outcome fingerprint. Byte-identical across runs.
        let f = e17_fleet(0);
        let dir = fresh_dir("e17-counts");
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        {
            let store = CheckpointStore::open(&dir).expect("open store"); // lint-allow: harness fixture
            let mut w = build(&f)
                .with_checkpoint_store(store)
                .with_crash_policy(CrashPolicy::panic_at(CrashSite::AfterUnion));
            let _ = catch_unwind(AssertUnwindSafe(|| w.wrangle()));
        }
        std::panic::set_hook(prev);
        let (w, out, _) = resume_from(&f, &dir);
        let (th, st) = fingerprint(&w, &out);
        print!("{}", out.metrics.render_counts());
        println!("table_hash={th:016x}");
        println!("state={st}");
        let _ = std::fs::remove_dir_all(&dir); // lint-allow: scratch cleanup
        return;
    }

    println!("E17: crash at every stage seam, resume byte-identically");
    println!("(child process killed via exit({CRASH_EXIT}) at the seam; fresh session");
    println!(" resumes from the same store; {SEEDS} seeded fleets per site, 40 sources)\n");

    // Cold references, one per seed.
    let fleets: Vec<SyntheticFleet> = (0..SEEDS).map(e17_fleet).collect();
    let colds: Vec<(u64, String)> = fleets
        .iter()
        .map(|f| {
            let mut w = build(f);
            let out = w.wrangle().expect("cold wrangle"); // lint-allow: experiment fixture
            fingerprint(&w, &out)
        })
        .collect();

    let widths = [18, 9, 11, 11];
    println!(
        "{}",
        header(&["crash site", "crashed", "resumed-ok", "identical"], &widths)
    );
    let mut site_rows: Vec<(CrashSite, u64, u64, u64)> = Vec::new();
    for site in CrashSite::all() {
        let mut crashed = 0u64;
        let mut resumed_ok = 0u64;
        let mut identical = 0u64;
        for trial in 0..SEEDS {
            let dir = fresh_dir(&format!("e17-{}-{trial}", site.name()));
            if !spawn_crash(site, &dir, trial) {
                continue;
            }
            crashed += 1;
            let (w, out, hits) = resume_from(&fleets[trial as usize], &dir);
            if hits > 0 {
                resumed_ok += 1;
            }
            if fingerprint(&w, &out) == colds[trial as usize] {
                identical += 1;
            }
            let _ = std::fs::remove_dir_all(&dir); // lint-allow: scratch cleanup
        }
        println!(
            "{}",
            row(
                &[
                    site.name().to_string(),
                    format!("{crashed}/{SEEDS}"),
                    format!("{resumed_ok}/{SEEDS}"),
                    format!("{identical}/{SEEDS}"),
                ],
                &widths
            )
        );
        site_rows.push((site, crashed, resumed_ok, identical));
    }

    // --- Resume speed after a post-ER crash ---------------------------------
    // ER dominates the pass (E13), so a crash after its seam should resume
    // in well under half the cold wall-clock: the expensive prefix replays
    // from checkpoints.
    let cold_secs = (0..TIMING_REPS)
        .map(|_| {
            let mut w = build(&fleets[0]);
            let t = Instant::now();
            std::hint::black_box(w.wrangle().expect("cold wrangle")); // lint-allow: experiment fixture
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let resume_secs = (0..TIMING_REPS)
        .map(|rep| {
            let dir = fresh_dir(&format!("e17-timing-{rep}"));
            assert!(spawn_crash(CrashSite::AfterEr, &dir, 0)); // lint-allow: harness fixture
            let store = CheckpointStore::open(&dir).expect("open store"); // lint-allow: harness fixture
            let mut w = build(&fleets[0]).with_checkpoint_store(store);
            let t = Instant::now();
            std::hint::black_box(w.resume().expect("resume completes")); // lint-allow: harness fixture
            let s = t.elapsed().as_secs_f64();
            let _ = std::fs::remove_dir_all(&dir); // lint-allow: scratch cleanup
            s
        })
        .fold(f64::INFINITY, f64::min);
    let ratio = resume_secs / cold_secs;
    println!(
        "\nresume after post-ER crash (best of {TIMING_REPS}): cold = {:.1}ms, \
         resume = {:.1}ms, ratio = {ratio:.2}",
        1e3 * cold_secs,
        1e3 * resume_secs
    );

    // --- Corrupt every record: detected, never loaded -----------------------
    let mut torn_rows = Vec::new();
    for (label, truncate) in [("torn", Some(0.5)), ("bitflip", None)] {
        let dir = fresh_dir(&format!("e17-corrupt-{label}"));
        {
            let store = CheckpointStore::open(&dir).expect("open store"); // lint-allow: harness fixture
            let mut w = build(&fleets[0]).with_checkpoint_store(store);
            w.wrangle().expect("populate store"); // lint-allow: harness fixture
        }
        let store = CheckpointStore::open(&dir).expect("open store"); // lint-allow: harness fixture
        let corrupted = store.corrupt_all_records(truncate);
        let mut w = build(&fleets[0]).with_checkpoint_store(store);
        let out = w.resume().expect("resume recomputes"); // lint-allow: harness fixture
        let same = fingerprint(&w, &out) == colds[0];
        let stats = w.checkpoint_store().expect("store attached").stats(); // lint-allow: harness fixture
        println!(
            "corruption [{label}]: {corrupted} records corrupted, {} detected, \
             {} loaded, output {}",
            stats.torn_detected,
            stats.hits,
            if same { "identical" } else { "DIVERGED" },
        );
        torn_rows.push((label, corrupted, stats.torn_detected, stats.hits, same));
    }

    // --- Verdicts ------------------------------------------------------------
    let total: u64 = site_rows.iter().map(|r| r.1).sum();
    let total_identical: u64 = site_rows.iter().map(|r| r.3).sum();
    let verdict_identity = total > 0 && total_identical == total;
    let verdict_speed = ratio <= 0.5;
    let verdict_torn = torn_rows.iter().all(|&(_, c, d, h, s)| c as u64 == d && h == 0 && s);
    println!(
        "\nverdict: resume identity {} ({total_identical}/{total} byte-identical); \
         post-ER resume {} the 50% ceiling (ratio {ratio:.2}); corrupt records {} \
         (0 loaded)",
        if verdict_identity { "holds" } else { "FAILS" },
        if verdict_speed { "under" } else { "OVER" },
        if verdict_torn { "all detected" } else { "NOT ALL DETECTED" },
    );

    // --- Machine-readable results -------------------------------------------
    let sites_json: Vec<String> = site_rows
        .iter()
        .map(|(site, crashed, resumed, identical)| {
            format!(
                "{{\"site\":\"{}\",\"seeds\":{SEEDS},\"crashed\":{crashed},\
                 \"resumed_with_hits\":{resumed},\"identical\":{identical}}}",
                site.name()
            )
        })
        .collect();
    let torn_json: Vec<String> = torn_rows
        .iter()
        .map(|(label, corrupted, detected, loaded, same)| {
            format!(
                "{{\"mode\":\"{label}\",\"corrupted\":{corrupted},\"detected\":{detected},\
                 \"loaded\":{loaded},\"identical\":{same}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e17_crash_recovery\",\"seed\":{SEED},\
         \"timing\":{{\"cold_secs\":{cold_secs:.4},\"resume_secs\":{resume_secs:.4},\
         \"ratio\":{ratio:.4}}},\
         \"sites\":[{}],\"corruption\":[{}]}}\n",
        sites_json.join(","),
        torn_json.join(",")
    );
    wrangler_bench::write_artifact("BENCH_e17.json", &json);

    println!("\nShape expected: every row 8/8 across the board — a crash at any seam,");
    println!("including mid-ER, leaves only whole checksummed records behind, and the");
    println!("chained content keys make the resumed prefix provably the same computation.");
    println!("Post-ER resume skips the dominant ER cost, so the ratio sits well under 0.5.");
}
