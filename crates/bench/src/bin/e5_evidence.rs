//! E5 — "using all the available information" (§2.3, Example 4).
//!
//! Claim under test: every added evidence type improves integration quality:
//! name similarity alone < + instance evidence < + ontology < + master-data
//! anchors in fusion. The fleet's synonym renames and cryptic columns are
//! exactly the failure modes each evidence type addresses.

use wrangler_bench::{default_fleet_config, fleet, header, row, target_sample};
use wrangler_context::{DataContext, Ontology, UserContext};
use wrangler_core::eval::score_against_truth;
use wrangler_core::Wrangler;
use wrangler_match::MatchConfig;
use wrangler_sources::{FleetConfig, SyntheticFleet};

fn build(f: &SyntheticFleet, cfg: MatchConfig, with_ontology: bool, with_master: bool) -> Wrangler {
    let mut ctx = if with_ontology {
        DataContext::with_ontology(Ontology::ecommerce())
    } else {
        DataContext::new()
    };
    if with_master {
        ctx.add_master("product", f.truth.master_catalog(), "sku")
            .expect("master");
    }
    let mut w = Wrangler::new(UserContext::completeness_first(), ctx, target_sample(f))
        .with_match_config(cfg);
    w.set_now(f.truth.now);
    for s in f.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    w
}

fn main() {
    println!("E5: the evidence ladder (30 sources, 200 products, heavy schema drift)\n");
    let cfg = FleetConfig {
        num_sources: 30,
        rename_rate: 0.8,
        cryptic_rate: 0.25,
        ..default_fleet_config()
    };

    let ladder: Vec<(&str, MatchConfig, bool, bool)> = vec![
        ("names only", MatchConfig::names_only(), false, false),
        (
            "+ instances",
            MatchConfig {
                use_instances: true,
                ..MatchConfig::names_only()
            },
            false,
            false,
        ),
        ("+ ontology", MatchConfig::default(), true, false),
        ("+ master data", MatchConfig::default(), true, true),
    ];

    let widths = [16, 9, 10, 9, 8, 8];
    println!(
        "{}",
        header(
            &["evidence", "coverage", "price_acc", "yield", "f1", "srcs"],
            &widths
        )
    );
    let seeds = [61u64, 62, 63];
    for (name, mcfg, ont, master) in ladder {
        let mut acc = [0.0f64; 4];
        let mut nsrc = 0usize;
        for &seed in &seeds {
            let f = fleet(&cfg, seed);
            let mut w = build(&f, mcfg.clone(), ont, master);
            let out = w.wrangle().expect("wrangle");
            nsrc += out.selected_sources.len();
            let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
            acc[0] += s.coverage / seeds.len() as f64;
            acc[1] += s.price_accuracy / seeds.len() as f64;
            acc[2] += s.correct_price_yield / seeds.len() as f64;
            acc[3] += s.f1 / seeds.len() as f64;
        }
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{:.3}", acc[0]),
                    format!("{:.3}", acc[1]),
                    format!("{:.3}", acc[2]),
                    format!("{:.3}", acc[3]),
                    format!("(n={})", nsrc / seeds.len()),
                ],
                &widths
            )
        );
    }
    println!("\nShape expected: every rung improves f1 — instances rescue cryptic");
    println!("columns, the ontology rescues synonym renames, master anchors");
    println!("pull fusion towards catalog-confirmed values.");
}
