//! E6 — extraction: induction economy and informed repair (§2.2, Example 3,
//! WADaR \[29\]).
//!
//! Claims under test:
//! (a) wrapper induction needs only a handful of annotated records to reach
//!     full extraction accuracy (the \[12\] crowd-learning premise);
//! (b) after template drift, informed repair (re-induction from already-
//!     integrated data) restores accuracy with ZERO fresh annotations, where
//!     the classical fix costs a full re-annotation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wrangler_bench::{header, row};
use wrangler_extract::induce::Annotation;
use wrangler_extract::repair::{drift_detected, repair_wrapper, RepairConfig};
use wrangler_extract::{induce_wrapper, Template};
use wrangler_table::{Table, Value};

/// A catalog of `n` products with distinctive names.
fn catalog(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::from(format!("P{i:04}")),
                Value::from(format!(
                    "{} {} {}",
                    ["Turbo", "Ultra", "Mini", "Mega"][rng.gen_range(0..4)],
                    ["Widget", "Gadget", "Flange", "Dynamo"][rng.gen_range(0..4)],
                    i
                )),
                Value::Float((rng.gen_range(500..50000) as f64) / 100.0),
                // Real listings omit fields: 15% of brands are absent.
                if rng.gen::<f64>() < 0.15 {
                    Value::Null
                } else {
                    Value::from(["Acme", "Bolt", "Stark"][rng.gen_range(0..3)])
                },
            ]
        })
        .collect();
    Table::literal(&["sku", "name", "price", "brand"], rows).expect("aligned")
}

fn annotation(t: &Table, i: usize) -> Annotation {
    // Annotators can only mark what is on the page: null fields are absent.
    let pairs: Vec<(String, String)> = ["sku", "name", "price", "brand"]
        .iter()
        .filter_map(|f| {
            let v = t.get_named(i, f).unwrap();
            (!v.is_null()).then(|| (f.to_string(), v.render()))
        })
        .collect();
    Annotation { values: pairs }
}

/// Cell-level accuracy of an extraction against the truth table (same row
/// count assumed; 0 if row counts differ).
fn extraction_accuracy(got: &Table, want: &Table) -> f64 {
    if got.num_rows() != want.num_rows() {
        return 0.0;
    }
    let mut ok = 0usize;
    let mut total = 0usize;
    for r in 0..want.num_rows() {
        for f in want.schema().fields() {
            total += 1;
            let w = want.get_named(r, &f.name).unwrap();
            if let Ok(c) = got.schema().index_of(&f.name) {
                if got.get(r, c).unwrap() == w {
                    ok += 1;
                }
            }
        }
    }
    ok as f64 / total.max(1) as f64
}

fn main() {
    println!("E6a: induction accuracy vs number of annotated examples");
    println!("(100-record pages, 20 seeded template variants each)\n");
    let widths = [13, 10, 10];
    println!(
        "{}",
        header(&["annotations", "accuracy", "failures"], &widths)
    );
    for k in 1..=5usize {
        let mut acc = 0.0;
        let mut failures = 0usize;
        let trials = 20;
        for t in 0..trials {
            let data = catalog(100, t as u64);
            let template = Template::listing(&["sku", "name", "price", "brand"]).drift(t as u64);
            let page = template.render(&data);
            let anns: Vec<Annotation> = (0..k).map(|j| annotation(&data, 7 + j * 13)).collect();
            match induce_wrapper(&page, &anns) {
                Ok(w) => {
                    let got = w.extract(&page).expect("extract");
                    acc += extraction_accuracy(&got.table, &data) / trials as f64;
                }
                Err(_) => failures += 1,
            }
        }
        println!(
            "{}",
            row(
                &[k.to_string(), format!("{acc:.3}"), failures.to_string()],
                &widths
            )
        );
    }

    println!("\nE6b: drift repair — informed (0 annotations) vs broken vs re-annotate");
    let widths = [24, 10, 13];
    println!(
        "{}",
        header(&["condition", "accuracy", "annotations"], &widths)
    );
    let trials = 20;
    let mut broken_acc = 0.0;
    let mut repaired_acc = 0.0;
    let mut reannotated_acc = 0.0;
    let mut repairs_ok = 0usize;
    for t in 0..trials {
        let data = catalog(100, 1000 + t as u64);
        let template = Template::listing(&["sku", "name", "price", "brand"]);
        let page = template.render(&data);
        let wrapper =
            induce_wrapper(&page, &[annotation(&data, 3), annotation(&data, 42)]).expect("induce");
        let integrated = wrapper.extract(&page).expect("extract").table;
        // Drift + price changes between visits.
        let drifted_template = template.drift(7000 + t as u64);
        let mut new_data = data.clone();
        for r in 0..new_data.num_rows() {
            let p = new_data.get_named(r, "price").unwrap().as_f64().unwrap();
            new_data
                .set(r, 2, Value::Float((p * 1.07 * 100.0).round() / 100.0))
                .unwrap();
        }
        let new_page = drifted_template.render(&new_data);

        let broken = wrapper.extract(&new_page).expect("extract");
        assert!(drift_detected(&broken, 0.5));
        broken_acc += extraction_accuracy(&broken.table, &new_data) / trials as f64;

        let cfg = RepairConfig {
            stable_columns: vec!["sku".into(), "name".into(), "brand".into()],
            ..RepairConfig::default()
        };
        if let Some(outcome) = repair_wrapper(&wrapper, &new_page, &integrated, &cfg) {
            let fixed = outcome.wrapper.extract(&new_page).expect("extract");
            repaired_acc += extraction_accuracy(&fixed.table, &new_data) / trials as f64;
            repairs_ok += 1;
        }
        let re = induce_wrapper(
            &new_page,
            &[annotation(&new_data, 3), annotation(&new_data, 42)],
        )
        .expect("re-induce");
        let re_ex = re.extract(&new_page).expect("extract");
        reannotated_acc += extraction_accuracy(&re_ex.table, &new_data) / trials as f64;
    }
    println!(
        "{}",
        row(
            &[
                "old wrapper (broken)".into(),
                format!("{broken_acc:.3}"),
                "0".into()
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                format!("informed repair ({repairs_ok}/{trials} ok)"),
                format!("{repaired_acc:.3}"),
                "0".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "human re-annotation".into(),
                format!("{reannotated_acc:.3}"),
                "2/page".into()
            ],
            &widths
        )
    );
    println!("\nShape expected: 1–2 annotations suffice (E6a); after drift the old");
    println!("wrapper collapses, informed repair restores near-oracle accuracy at");
    println!("zero annotation cost, matching human re-annotation (E6b).");
}
