//! E4 — the pay-as-you-go curve and the value of *shared* feedback (§2.4,
//! §3.2, Example 5).
//!
//! Claims under test:
//! (a) quality rises with the feedback budget (pay-as-you-go: every payment
//!     buys improvement);
//! (b) at equal budget, feedback routed to *all* components (the paper's
//!     proposal) beats the state-of-the-art siloed regime where each item
//!     only refreshes the artifact it was given on.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::eval::score_against_truth;
use wrangler_core::{suggest_feedback_targets, Wrangler};
use wrangler_feedback::{FeedbackItem, FeedbackTarget, RoutingMode, Verdict};
use wrangler_sources::{FleetConfig, SyntheticFleet};

/// One feedback round: the analyst samples `k` delivered prices (rotating
/// offset so rounds touch different rows) and judges each against the truth.
fn feedback_round(
    w: &mut Wrangler,
    f: &SyntheticFleet,
    table: &wrangler_table::Table,
    k: usize,
    round: usize,
) -> usize {
    let price_attr = w.target().index_of("price").unwrap();
    let mut given = 0;
    let n = table.num_rows().max(1);
    for step in 0..n {
        if given == k {
            break;
        }
        let rowi = (step * 7 + round * 131) % n;
        if let (Some(sku), Some(p)) = (
            table.get_named(rowi, "sku").unwrap().as_str(),
            table.get_named(rowi, "price").unwrap().as_f64(),
        ) {
            let correct = f.truth.price_is_correct(sku, p, 0.005);
            w.give_feedback(FeedbackItem::expert(
                FeedbackTarget::Value {
                    entity: rowi,
                    attr: price_attr,
                    value: None,
                },
                if correct {
                    Verdict::Positive
                } else {
                    Verdict::Negative
                },
                1.0,
            ));
            given += 1;
        }
    }
    given
}

fn run_mode(f: &SyntheticFleet, mode: RoutingMode, budgets: &[usize]) -> Vec<(usize, f64)> {
    let mut w = session(f, UserContext::balanced("e4"));
    w.routing = mode;
    let mut out = w.wrangle().expect("wrangle");
    let mut curve = Vec::new();
    let mut spent = 0usize;
    for (round, &b) in budgets.iter().enumerate() {
        let need = b - spent;
        if need > 0 {
            spent += feedback_round(&mut w, f, &out.table, need, round);
            out = w.rewrangle().expect("rewrangle");
        }
        let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
        curve.push((spent, s.correct_price_yield));
    }
    curve
}

/// Shared routing with *active* targeting: each round asks about the slots
/// the system is least sure of (see `wrangler_core::active`).
fn run_targeted(f: &SyntheticFleet, budgets: &[usize]) -> Vec<(usize, f64)> {
    let mut w = session(f, UserContext::balanced("e4"));
    let mut out = w.wrangle().expect("wrangle");
    let price_attr = w.target().index_of("price").unwrap();
    let mut curve = Vec::new();
    let mut spent = 0usize;
    for &b in budgets {
        let need = b.saturating_sub(spent);
        if need > 0 {
            for sugg in suggest_feedback_targets(&w, price_attr, need) {
                let sku = out.table.get_named(sugg.entity, "sku").unwrap().render();
                let correct = sugg
                    .value
                    .as_f64()
                    .is_some_and(|p| f.truth.price_is_correct(&sku, p, 0.005));
                w.give_feedback(FeedbackItem::expert(
                    FeedbackTarget::Value {
                        entity: sugg.entity,
                        attr: price_attr,
                        value: Some(sugg.value.clone()),
                    },
                    if correct {
                        Verdict::Positive
                    } else {
                        Verdict::Negative
                    },
                    1.0,
                ));
                spent += 1;
            }
            out = w.rewrangle().expect("rewrangle");
        }
        let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
        curve.push((spent, s.correct_price_yield));
    }
    curve
}

fn main() {
    println!("E4: pay-as-you-go feedback, shared vs siloed routing");
    println!("(25 sources, 200 products; yield = correct prices / catalog)\n");
    let cfg = FleetConfig {
        num_sources: 25,
        error_rate: (0.05, 0.35),
        ..default_fleet_config()
    };
    let budgets = [0usize, 25, 50, 100, 200, 400];
    // Average over seeds: feedback effects are stochastic in which rows get
    // judged.
    let seeds = [41u64, 42, 43];
    let mut shared_avg = vec![0.0f64; budgets.len()];
    let mut siloed_avg = vec![0.0f64; budgets.len()];
    let mut targeted_avg = vec![0.0f64; budgets.len()];
    for &seed in &seeds {
        let f = fleet(&cfg, seed);
        for (i, (_, y)) in run_mode(&f, RoutingMode::Shared, &budgets)
            .iter()
            .enumerate()
        {
            shared_avg[i] += y / seeds.len() as f64;
        }
        for (i, (_, y)) in run_mode(&f, RoutingMode::Siloed, &budgets)
            .iter()
            .enumerate()
        {
            siloed_avg[i] += y / seeds.len() as f64;
        }
        for (i, (_, y)) in run_targeted(&f, &budgets).iter().enumerate() {
            targeted_avg[i] += y / seeds.len() as f64;
        }
    }
    let widths = [8, 13, 13, 15, 8];
    println!(
        "{}",
        header(
            &[
                "budget",
                "shared_yield",
                "siloed_yield",
                "targeted_yield",
                "gain"
            ],
            &widths
        )
    );
    for (i, &b) in budgets.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    b.to_string(),
                    format!("{:.3}", shared_avg[i]),
                    format!("{:.3}", siloed_avg[i]),
                    format!("{:.3}", targeted_avg[i]),
                    format!("{:+.3}", shared_avg[i] - siloed_avg[i]),
                ],
                &widths
            )
        );
    }
    println!("\nShape expected: all curves rise with budget (pay-as-you-go);");
    println!("shared routing dominates siloed at equal budget (one judgement");
    println!("also informs source trust and mapping beliefs); active targeting");
    println!("of uncertain slots extracts more value per judgement than");
    println!("round-robin sampling at small budgets.");
}
