//! E14 — kernel scaling on the measured hot path: ER *and* fuse (§4.3).
//!
//! E13 showed entity resolution dominating the wrangle wall clock with fuse
//! next in line. Claims under test here:
//!
//! 1. The [`ErKernel`] — ER config compiled once against the union schema,
//!    per-row renderings/token sets cached, pairs scored across the
//!    deterministic *blocked* worker pool — beats the uncompiled serial
//!    reference (`match_pairs`, which re-renders both rows for every pair)
//!    by ≥2× on the 40-source workload while producing **byte-identical**
//!    scores and clusters for any worker count. The blocked pool replaced
//!    the original strided pickup (worker *w* took pairs *w, w+workers, …*),
//!    whose cache-hostile interleaving this experiment exposed as *negative*
//!    scaling (8 workers 42% slower than 1 at 40 sources).
//! 2. The [`FuseKernel`] — per-source weights/decays compiled once per pass,
//!    slots fused over the same blocked pool — is bit-identical to the
//!    uncompiled per-slot `fuse_attribute` reference at every worker count.
//! 3. Scaling is non-negative on a 10×-larger fleet (400 sources): with the
//!    pool sized by `effective_workers` (never wider than the machine's
//!    cores, never fewer than `MIN_PAIRS_PER_WORKER`/`MIN_SLOTS_PER_WORKER`
//!    items per thread), `kernel_ms@4 < kernel_ms@1` on multi-core machines,
//!    and on narrower machines the clamp makes the widths coincide instead
//!    of oversubscribing — the flat-to-negative half of the old curve is
//!    structurally gone. The JSON records `cores` so the CI gate
//!    (`scripts/check_e14_scaling.py`) knows which regime it is reading.
//! 4. The content-keyed pair-score cache answers 100% of lookups when a
//!    re-wrangle sees unchanged rows.
//!
//! Protocol: per fleet size, wrangle once to materialise the mapped union
//! and the claim set, rebuild the pipeline's candidate set (name blocking +
//! exact-sku blocking), then time `REPS` runs of (a) serial `match_pairs`,
//! (b) ER kernel compile+score at each worker count, (c) serial
//! `fuse_attribute` over all slots and (d) fuse kernel compile+fuse at each
//! worker count, taking the best of the runs (minimum suppresses scheduler
//! noise on a shared box). Every kernel output is compared bit-for-bit
//! against its serial reference. The cache section forces a structural
//! re-wrangle with unchanged rows and reads the hit/miss counters. Timings
//! are wall-clock; the count half of the metrics report is
//! seeded-deterministic — `--counts` prints only that half and CI
//! double-runs it to assert byte-identical output. A full run writes
//! `BENCH_e14.json`.
//!
//! `lint-allow:` exemptions here follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::working::Artifact;
use wrangler_core::Wrangler;
use wrangler_fusion::strategies::fuse_attribute;
use wrangler_fusion::{FuseKernel, FusedValue};
use wrangler_resolve::{
    candidates_blocked, candidates_blocked_exact, cluster_pairs, match_pairs, ErConfig, ErKernel,
    ScoredPair,
};
use wrangler_sources::FleetConfig;
use wrangler_table::{par, Table};

const SEED: u64 = 1401;
/// The last entry is the 10× fleet the scaling gate reads (10, 20, 40
/// sources, then 400 = 10 × the old largest).
const FLEET_SIZES: [usize; 4] = [10, 20, 40, 400];
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

fn build(num_sources: usize) -> Wrangler {
    let cfg = FleetConfig {
        num_sources,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, SEED);
    session(&f, UserContext::balanced("e14"))
}

/// The pipeline's ER candidate set over a union table: name blocking plus
/// exact-key blocking, sorted and deduplicated (mirrors the wrangle stage).
fn pipeline_candidates(union: &Table) -> Vec<(usize, usize)> {
    let mut candidates =
        candidates_blocked(union, "name").expect("union has a name column"); // lint-allow: experiment fixture
    candidates.extend(
        candidates_blocked_exact(union, "sku").expect("union has a sku column"), // lint-allow: experiment fixture
    );
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Best (minimum) wall-clock seconds of `REPS` runs of `f` — the standard
/// noise-resistant estimator on a shared/oversubscribed machine, where the
/// median still absorbs scheduler stalls.
fn best_secs(mut f: impl FnMut()) -> f64 {
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Bit-level equality of two scored-pair lists (indices and score bits).
fn pairs_identical(a: &[ScoredPair], b: &[ScoredPair]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.i == y.i && x.j == y.j && x.score.to_bits() == y.score.to_bits()
        })
}

/// Bit-level equality of two fused-slot lists (values, supporters, and the
/// bits of every reported f64).
fn fused_identical(a: &[Option<FusedValue>], b: &[Option<FusedValue>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.value == y.value
                    && x.supporters == y.supporters
                    && x.weight.to_bits() == y.weight.to_bits()
                    && x.total_weight.to_bits() == y.total_weight.to_bits()
                    && x.freshness.to_bits() == y.freshness.to_bits()
            }
            _ => false,
        })
}

struct FleetResult {
    sources: usize,
    candidates: usize,
    serial_ms: f64,
    kernel_ms: Vec<(usize, f64)>,
    identical: bool,
    no_idle_worker: bool,
    fuse_slots: usize,
    fuse_serial_ms: f64,
    fuse_kernel_ms: Vec<(usize, f64)>,
    fuse_identical: bool,
}

fn measure_fleet(num_sources: usize) -> FleetResult {
    let mut w = build(num_sources);
    w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
    let union = w.union_table().expect("wrangle caches the union"); // lint-allow: experiment fixture
    let cfg: ErConfig = w.er_config().clone();
    let candidates = pipeline_candidates(&union);

    // --- ER: serial reference vs kernel at each worker count ----------------
    // Serial reference: the uncompiled path, column names resolved once but
    // every pair re-rendering both rows.
    let serial =
        match_pairs(&union, &candidates, &cfg).expect("serial scoring succeeds"); // lint-allow: experiment fixture
    let serial_clusters =
        cluster_pairs(union.num_rows(), serial.iter().map(|p| (p.i, p.j)));
    let serial_ms = 1e3
        * best_secs(|| {
            std::hint::black_box(
                match_pairs(&union, &candidates, &cfg).expect("serial scoring succeeds"), // lint-allow: experiment fixture
            );
        });

    let mut kernel_ms = Vec::new();
    let mut identical = true;
    let mut no_idle_worker = true;
    for &workers in &WORKERS {
        // Timed end-to-end: compile + parallel score. Precompilation is part
        // of the kernel's cost, not free setup. The requested width goes
        // through the pool-sizing policy, exactly as the pipeline's does.
        let ms = 1e3
            * best_secs(|| {
                let k = ErKernel::compile(&union, &cfg).expect("schema compiles"); // lint-allow: experiment fixture
                std::hint::black_box(
                    k.match_pairs_parallel(&candidates, workers)
                        .expect("parallel scoring succeeds"), // lint-allow: experiment fixture
                );
            });
        kernel_ms.push((workers, ms));
        let k = ErKernel::compile(&union, &cfg).expect("schema compiles"); // lint-allow: experiment fixture
        let (pairs, stats) = k
            .match_pairs_parallel(&candidates, workers)
            .expect("parallel scoring succeeds"); // lint-allow: experiment fixture
        let clusters = cluster_pairs(union.num_rows(), pairs.iter().map(|p| (p.i, p.j)));
        identical &= pairs_identical(&serial, &pairs) && clusters == serial_clusters;
        // The sizing policy decides the spawned width; whatever it picks,
        // the items must cover every candidate with no idle worker.
        no_idle_worker &= stats.iter().map(|s| s.items).sum::<u64>() == candidates.len() as u64
            && !stats.is_empty()
            && stats.iter().all(|s| s.items > 0);
    }

    // --- Fuse: serial fuse_attribute vs FuseKernel at each worker count -----
    let (claims, ctx, strategy) = w.fusion_inputs().expect("wrangle caches the claim set"); // lint-allow: experiment fixture
    let slots = claims.slots();
    let fuse_serial: Vec<Option<FusedValue>> = slots
        .iter()
        .map(|&(e, a)| fuse_attribute(claims, e, a, strategy, ctx))
        .collect();
    let fuse_serial_ms = 1e3
        * best_secs(|| {
            std::hint::black_box(
                slots
                    .iter()
                    .map(|&(e, a)| fuse_attribute(claims, e, a, strategy, ctx))
                    .collect::<Vec<Option<FusedValue>>>(),
            );
        });
    let mut fuse_kernel_ms = Vec::new();
    let mut fuse_ident = true;
    for &workers in &WORKERS {
        let ms = 1e3
            * best_secs(|| {
                let k = FuseKernel::compile(claims, strategy, ctx);
                std::hint::black_box(
                    k.fuse_slots_parallel(&slots, workers)
                        .expect("parallel fusion succeeds"), // lint-allow: experiment fixture
                );
            });
        fuse_kernel_ms.push((workers, ms));
        let k = FuseKernel::compile(claims, strategy, ctx);
        let (fused, stats) = k
            .fuse_slots_parallel(&slots, workers)
            .expect("parallel fusion succeeds"); // lint-allow: experiment fixture
        fuse_ident &= fused_identical(&fuse_serial, &fused)
            && stats.iter().map(|s| s.items).sum::<u64>() == slots.len() as u64;
    }

    FleetResult {
        sources: num_sources,
        candidates: candidates.len(),
        serial_ms,
        kernel_ms,
        identical,
        no_idle_worker,
        fuse_slots: slots.len(),
        fuse_serial_ms,
        fuse_kernel_ms,
        fuse_identical: fuse_ident,
    }
}

/// Cache replay: wrangle, force the structural path with unchanged rows,
/// and report (hits, misses, candidates) of the second pass.
fn cache_replay(num_sources: usize) -> (u64, u64, u64) {
    let mut w = build(num_sources).with_er_workers(4);
    w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
    let first = w.metrics();
    w.working.invalidate(Artifact::Clusters);
    w.rewrangle().expect("structural rewrangle"); // lint-allow: experiment fixture
    let second = w.metrics();
    let get = |m: &wrangler_core::MetricsReport, k: &str| m.counts.get(k).copied().unwrap_or(0);
    let per_pass = get(&first, "er.candidates");
    (
        get(&second, "er.cache.hits") - get(&first, "er.cache.hits"),
        get(&second, "er.cache.misses") - get(&first, "er.cache.misses"),
        per_pass,
    )
}

fn ms_at(kernel_ms: &[(usize, f64)], w: usize) -> f64 {
    kernel_ms
        .iter()
        .find(|&&(k, _)| k == w)
        .map_or(f64::NAN, |&(_, ms)| ms)
}

fn main() {
    let counts_only = std::env::args().any(|a| a == "--counts");
    if counts_only {
        // Deterministic half only: counts and gauges of the largest workload
        // with fixed worker counts, byte-identical across runs. Pinned
        // counts matter: per-worker counters depend on the requested pool
        // size (the sizing policy then resolves it identically every run on
        // a given machine).
        let mut w = build(*FLEET_SIZES.last().expect("const non-empty")) // lint-allow: const fixture
            .with_er_workers(4)
            .with_fuse_workers(4);
        w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
        print!("{}", w.metrics().render_counts());
        return;
    }

    let cores = par::available_parallelism();
    println!("E14: precompiled kernels (ER + fuse) vs serial references (200 products)");
    println!("(serial = uncompiled match_pairs re-rendering rows per pair; kernel@w =");
    println!(" compile + blocked-pool scoring with w requested workers, width resolved");
    println!(" by the sizing policy — this machine has {cores} core(s); best of {REPS} runs;");
    println!(" identical = pairs, score bits and clusters equal serial at every w)\n");

    let widths = [7, 10, 9, 9, 9, 9, 9, 9, 10];
    println!(
        "{}",
        header(
            &[
                "sources", "cands", "serial", "k@1", "k@2", "k@4", "k@8", "speedup4",
                "identical"
            ],
            &widths
        )
    );

    let mut results = Vec::new();
    for &n in &FLEET_SIZES {
        let r = measure_fleet(n);
        let speedup4 = r.serial_ms / ms_at(&r.kernel_ms, 4);
        let cells = vec![
            r.sources.to_string(),
            r.candidates.to_string(),
            format!("{:.1}", r.serial_ms),
            format!("{:.1}", ms_at(&r.kernel_ms, 1)),
            format!("{:.1}", ms_at(&r.kernel_ms, 2)),
            format!("{:.1}", ms_at(&r.kernel_ms, 4)),
            format!("{:.1}", ms_at(&r.kernel_ms, 8)),
            format!("{:.2}x", speedup4),
            if r.identical { "yes" } else { "NO" }.to_string(),
        ];
        println!("{}", row(&cells, &widths));
        results.push(r);
    }

    println!("\nfuse kernel (same fleets; serial = per-slot fuse_attribute):");
    let fwidths = [7, 8, 9, 9, 9, 9, 9, 9, 10];
    println!(
        "{}",
        header(
            &[
                "sources", "slots", "serial", "f@1", "f@2", "f@4", "f@8", "speedup4",
                "identical"
            ],
            &fwidths
        )
    );
    for r in &results {
        let speedup4 = r.fuse_serial_ms / ms_at(&r.fuse_kernel_ms, 4);
        let cells = vec![
            r.sources.to_string(),
            r.fuse_slots.to_string(),
            format!("{:.2}", r.fuse_serial_ms),
            format!("{:.2}", ms_at(&r.fuse_kernel_ms, 1)),
            format!("{:.2}", ms_at(&r.fuse_kernel_ms, 2)),
            format!("{:.2}", ms_at(&r.fuse_kernel_ms, 4)),
            format!("{:.2}", ms_at(&r.fuse_kernel_ms, 8)),
            format!("{:.2}x", speedup4),
            if r.fuse_identical { "yes" } else { "NO" }.to_string(),
        ];
        println!("{}", row(&cells, &fwidths));
    }

    // --- Cache replay on the largest workload -------------------------------
    let big = *FLEET_SIZES.last().expect("const non-empty"); // lint-allow: const fixture
    let (hits, misses, per_pass) = cache_replay(big);
    let hit_rate = if per_pass == 0 {
        0.0
    } else {
        hits as f64 / per_pass as f64
    };
    println!(
        "\npair-score cache replay at {big} sources (structural rewrangle, rows unchanged):\n  \
         candidates/pass = {per_pass}, second-pass hits = {hits}, misses = {misses}, \
         hit rate = {:.1}%",
        100.0 * hit_rate
    );

    // --- Verdicts ------------------------------------------------------------
    let last = results.last().expect("const non-empty fleet list"); // lint-allow: const fixture
    let speedup4 = last.serial_ms / ms_at(&last.kernel_ms, 4);
    let scaling4 = ms_at(&last.kernel_ms, 1) / ms_at(&last.kernel_ms, 4);
    let verdict_speed = speedup4 >= 2.0;
    // On a machine with ≥4 cores the blocked pool must actually win at 4
    // workers; on narrower machines the sizing policy clamps the widths
    // together and the comparison is two measurements of the same
    // configuration (the gate script applies a noise tolerance there).
    let verdict_scaling = ms_at(&last.kernel_ms, 4) < ms_at(&last.kernel_ms, 1);
    let verdict_identical = results.iter().all(|r| r.identical);
    let verdict_fuse_identical = results.iter().all(|r| r.fuse_identical);
    let verdict_workers = results.iter().all(|r| r.no_idle_worker);
    let verdict_cache = misses == 0 && hits == per_pass && per_pass > 0;
    println!(
        "verdict: kernel@4 {} the 2x floor at {big} sources ({speedup4:.2}x); \
         k@1/k@4 = {scaling4:.2}x ({}); ER outputs {}; fuse outputs {}; \
         worker items {} candidates; cache replay {}",
        if verdict_speed { "clears" } else { "MISSES" },
        if verdict_scaling {
            "positive scaling"
        } else {
            "NOT positive"
        },
        if verdict_identical {
            "byte-identical to serial"
        } else {
            "DIVERGE"
        },
        if verdict_fuse_identical {
            "byte-identical"
        } else {
            "DIVERGE"
        },
        if verdict_workers { "cover" } else { "DROP" },
        if verdict_cache { "100% hits" } else { "INCOMPLETE" },
    );

    // --- Machine-readable results -------------------------------------------
    let fleets_json: Vec<String> = results
        .iter()
        .map(|r| {
            let kernels = r
                .kernel_ms
                .iter()
                .map(|(w, ms)| format!("\"{w}\":{:.4}", ms))
                .collect::<Vec<_>>()
                .join(",");
            let fuse_kernels = r
                .fuse_kernel_ms
                .iter()
                .map(|(w, ms)| format!("\"{w}\":{:.4}", ms))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"sources\":{},\"candidates\":{},\"serial_ms\":{:.4},\
                 \"kernel_ms\":{{{kernels}}},\"identical\":{},\
                 \"fuse_slots\":{},\"fuse_serial_ms\":{:.4},\
                 \"fuse_kernel_ms\":{{{fuse_kernels}}},\"fuse_identical\":{}}}",
                r.sources,
                r.candidates,
                r.serial_ms,
                r.identical,
                r.fuse_slots,
                r.fuse_serial_ms,
                r.fuse_identical
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e14_er_scaling\",\"seed\":{SEED},\"cores\":{cores},\
         \"speedup_at_4_workers\":{speedup4:.4},\
         \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"candidates_per_pass\":{per_pass}}},\
         \"fleets\":[{}]}}\n",
        fleets_json.join(",")
    );
    wrangler_bench::write_artifact("BENCH_e14.json", &json);

    println!("\nShape expected: the kernels win big even at 1 worker (precompilation —");
    println!("per-row renderings and per-source weights cached once instead of per item);");
    println!("extra workers help exactly when cores exist — the sizing policy refuses");
    println!("oversubscription — and never change a bit of output. The cache turns an");
    println!("unchanged-rows re-wrangle into pure lookup.");
}
