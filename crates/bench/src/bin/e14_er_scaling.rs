//! E14 — the precompiled parallel ER kernel on the measured hot path (§4.3).
//!
//! E13 showed entity resolution dominating the wrangle wall clock. Claim
//! under test here: the [`ErKernel`] — the ER config compiled once against
//! the union schema, per-row renderings/token sets cached, pairs scored
//! across a deterministic strided worker pool — beats the uncompiled serial
//! reference (`match_pairs`, which re-renders both rows for every pair) by
//! ≥2× on the 40-source workload while producing **byte-identical** scores
//! and clusters for any worker count; and the content-keyed pair-score
//! cache answers 100% of lookups when a re-wrangle sees unchanged rows.
//!
//! Protocol: per fleet size, wrangle once to materialise the mapped union,
//! rebuild the pipeline's candidate set (name blocking + exact-sku
//! blocking), then time `REPS` runs of (a) serial `match_pairs` and (b)
//! kernel compile+score at each worker count, taking the best of the runs
//! (minimum suppresses scheduler noise on a shared box). Every kernel
//! output is compared bit-for-bit against the serial pairs and the derived
//! clusters. The cache section forces a structural re-wrangle with
//! unchanged rows and reads the hit/miss counters. Timings are wall-clock;
//! the count half of the metrics report is seeded-deterministic — `--counts`
//! prints only that half and CI double-runs it to assert byte-identical
//! output. A full run writes `BENCH_e14.json`.
//!
//! `lint-allow:` exemptions here follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::working::Artifact;
use wrangler_core::Wrangler;
use wrangler_resolve::{
    candidates_blocked, candidates_blocked_exact, cluster_pairs, match_pairs, ErConfig, ErKernel,
    ScoredPair,
};
use wrangler_sources::FleetConfig;
use wrangler_table::Table;

const SEED: u64 = 1401;
const FLEET_SIZES: [usize; 3] = [10, 20, 40];
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

fn build(num_sources: usize) -> Wrangler {
    let cfg = FleetConfig {
        num_sources,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, SEED);
    session(&f, UserContext::balanced("e14"))
}

/// The pipeline's ER candidate set over a union table: name blocking plus
/// exact-key blocking, sorted and deduplicated (mirrors the wrangle stage).
fn pipeline_candidates(union: &Table) -> Vec<(usize, usize)> {
    let mut candidates =
        candidates_blocked(union, "name").expect("union has a name column"); // lint-allow: experiment fixture
    candidates.extend(
        candidates_blocked_exact(union, "sku").expect("union has a sku column"), // lint-allow: experiment fixture
    );
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Best (minimum) wall-clock seconds of `REPS` runs of `f` — the standard
/// noise-resistant estimator on a shared/oversubscribed machine, where the
/// median still absorbs scheduler stalls.
fn best_secs(mut f: impl FnMut()) -> f64 {
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Bit-level equality of two scored-pair lists (indices and score bits).
fn pairs_identical(a: &[ScoredPair], b: &[ScoredPair]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.i == y.i && x.j == y.j && x.score.to_bits() == y.score.to_bits()
        })
}

struct FleetResult {
    sources: usize,
    candidates: usize,
    serial_ms: f64,
    kernel_ms: Vec<(usize, f64)>,
    identical: bool,
    no_idle_worker: bool,
}

fn measure_fleet(num_sources: usize) -> FleetResult {
    let mut w = build(num_sources);
    w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
    let union = w.union_table().expect("wrangle caches the union"); // lint-allow: experiment fixture
    let cfg: ErConfig = w.er_config().clone();
    let candidates = pipeline_candidates(&union);

    // Serial reference: the uncompiled path, column names resolved once but
    // every pair re-rendering both rows.
    let serial =
        match_pairs(&union, &candidates, &cfg).expect("serial scoring succeeds"); // lint-allow: experiment fixture
    let serial_clusters =
        cluster_pairs(union.num_rows(), serial.iter().map(|p| (p.i, p.j)));
    let serial_ms = 1e3
        * best_secs(|| {
            std::hint::black_box(
                match_pairs(&union, &candidates, &cfg).expect("serial scoring succeeds"), // lint-allow: experiment fixture
            );
        });

    let mut kernel_ms = Vec::new();
    let mut identical = true;
    let mut no_idle_worker = true;
    for &workers in &WORKERS {
        // Timed end-to-end: compile + parallel score. Precompilation is part
        // of the kernel's cost, not free setup.
        let ms = 1e3
            * best_secs(|| {
                let k = ErKernel::compile(&union, &cfg).expect("schema compiles"); // lint-allow: experiment fixture
                std::hint::black_box(
                    k.match_pairs_parallel(&candidates, workers)
                        .expect("parallel scoring succeeds"), // lint-allow: experiment fixture
                );
            });
        kernel_ms.push((workers, ms));
        let k = ErKernel::compile(&union, &cfg).expect("schema compiles"); // lint-allow: experiment fixture
        let (pairs, stats) = k
            .match_pairs_parallel(&candidates, workers)
            .expect("parallel scoring succeeds"); // lint-allow: experiment fixture
        let clusters = cluster_pairs(union.num_rows(), pairs.iter().map(|p| (p.i, p.j)));
        identical &= pairs_identical(&serial, &pairs) && clusters == serial_clusters;
        let spawned = workers.min(candidates.len().max(1));
        no_idle_worker &= stats.iter().map(|s| s.items).sum::<u64>() == candidates.len() as u64
            && stats.len() == spawned
            && (candidates.len() < spawned || stats.iter().all(|s| s.items > 0));
    }

    FleetResult {
        sources: num_sources,
        candidates: candidates.len(),
        serial_ms,
        kernel_ms,
        identical,
        no_idle_worker,
    }
}

/// Cache replay: wrangle, force the structural path with unchanged rows,
/// and report (hits, misses, candidates) of the second pass.
fn cache_replay(num_sources: usize) -> (u64, u64, u64) {
    let mut w = build(num_sources).with_er_workers(4);
    w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
    let first = w.metrics();
    w.working.invalidate(Artifact::Clusters);
    w.rewrangle().expect("structural rewrangle"); // lint-allow: experiment fixture
    let second = w.metrics();
    let get = |m: &wrangler_core::MetricsReport, k: &str| m.counts.get(k).copied().unwrap_or(0);
    let per_pass = get(&first, "er.candidates");
    (
        get(&second, "er.cache.hits") - get(&first, "er.cache.hits"),
        get(&second, "er.cache.misses") - get(&first, "er.cache.misses"),
        per_pass,
    )
}

fn main() {
    let counts_only = std::env::args().any(|a| a == "--counts");
    if counts_only {
        // Deterministic half only: counts and gauges of the largest workload
        // with a fixed worker count, byte-identical across runs. A pinned
        // worker count matters: per-worker counters depend on the pool size.
        let mut w = build(*FLEET_SIZES.last().expect("const non-empty")) // lint-allow: const fixture
            .with_er_workers(4);
        w.wrangle().expect("seeded workload wrangles"); // lint-allow: experiment fixture
        print!("{}", w.metrics().render_counts());
        return;
    }

    println!("E14: precompiled parallel ER kernel vs serial reference (200 products)");
    println!("(serial = uncompiled match_pairs re-rendering rows per pair; kernel@w =");
    println!(" ErKernel compile + strided scoring with w workers; best of {REPS} runs;");
    println!(" identical = pairs, score bits and clusters equal serial at every w)\n");

    let widths = [7, 10, 9, 9, 9, 9, 9, 9, 10];
    println!(
        "{}",
        header(
            &[
                "sources", "cands", "serial", "k@1", "k@2", "k@4", "k@8", "speedup4",
                "identical"
            ],
            &widths
        )
    );

    let mut results = Vec::new();
    for &n in &FLEET_SIZES {
        let r = measure_fleet(n);
        let ms_at = |w: usize| {
            r.kernel_ms
                .iter()
                .find(|&&(k, _)| k == w)
                .map_or(f64::NAN, |&(_, ms)| ms)
        };
        let speedup4 = r.serial_ms / ms_at(4);
        let cells = vec![
            r.sources.to_string(),
            r.candidates.to_string(),
            format!("{:.1}", r.serial_ms),
            format!("{:.1}", ms_at(1)),
            format!("{:.1}", ms_at(2)),
            format!("{:.1}", ms_at(4)),
            format!("{:.1}", ms_at(8)),
            format!("{:.2}x", speedup4),
            if r.identical { "yes" } else { "NO" }.to_string(),
        ];
        println!("{}", row(&cells, &widths));
        results.push(r);
    }

    // --- Cache replay on the largest workload -------------------------------
    let big = *FLEET_SIZES.last().expect("const non-empty"); // lint-allow: const fixture
    let (hits, misses, per_pass) = cache_replay(big);
    let hit_rate = if per_pass == 0 {
        0.0
    } else {
        hits as f64 / per_pass as f64
    };
    println!(
        "\npair-score cache replay at {big} sources (structural rewrangle, rows unchanged):\n  \
         candidates/pass = {per_pass}, second-pass hits = {hits}, misses = {misses}, \
         hit rate = {:.1}%",
        100.0 * hit_rate
    );

    // --- Verdicts ------------------------------------------------------------
    let last = results.last().expect("const non-empty fleet list"); // lint-allow: const fixture
    let speedup4 = last.serial_ms
        / last
            .kernel_ms
            .iter()
            .find(|&&(w, _)| w == 4)
            .map_or(f64::NAN, |&(_, ms)| ms);
    let verdict_speed = speedup4 >= 2.0;
    let verdict_identical = results.iter().all(|r| r.identical);
    let verdict_workers = results.iter().all(|r| r.no_idle_worker);
    let verdict_cache = misses == 0 && hits == per_pass && per_pass > 0;
    println!(
        "verdict: kernel@4 {} the 2x floor at {big} sources ({speedup4:.2}x); outputs {}; \
         worker items {} candidates; cache replay {}",
        if verdict_speed { "clears" } else { "MISSES" },
        if verdict_identical {
            "byte-identical to serial"
        } else {
            "DIVERGE"
        },
        if verdict_workers { "cover" } else { "DROP" },
        if verdict_cache { "100% hits" } else { "INCOMPLETE" },
    );

    // --- Machine-readable results -------------------------------------------
    let fleets_json: Vec<String> = results
        .iter()
        .map(|r| {
            let kernels = r
                .kernel_ms
                .iter()
                .map(|(w, ms)| format!("\"{w}\":{:.4}", ms))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"sources\":{},\"candidates\":{},\"serial_ms\":{:.4},\
                 \"kernel_ms\":{{{kernels}}},\"identical\":{}}}",
                r.sources, r.candidates, r.serial_ms, r.identical
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e14_er_scaling\",\"seed\":{SEED},\
         \"speedup_at_4_workers\":{speedup4:.4},\
         \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"candidates_per_pass\":{per_pass}}},\
         \"fleets\":[{}]}}\n",
        fleets_json.join(",")
    );
    match std::fs::write("BENCH_e14.json", &json) {
        Ok(()) => println!("\nwrote BENCH_e14.json"),
        Err(e) => println!("\ncould not write BENCH_e14.json: {e}"),
    }

    println!("\nShape expected: the kernel wins big even at 1 worker (precompilation —");
    println!("renderings, char vectors and token sets cached per row instead of per");
    println!("pair); extra workers help only when cores exist, and never change a bit");
    println!("of output. The cache turns an unchanged-rows re-wrangle into pure lookup.");
}
