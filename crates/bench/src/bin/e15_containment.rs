//! E15 — stage-level fault containment under mid-pipeline poison (§2.2, §4.2).
//!
//! E11 hardened *acquisition*: sources that are down, slow or rate-limited.
//! But a source can clear acquisition and still poison the pipeline —
//! schema-drifted rows, type-poisoned cells, pathological strings, NaN/∞
//! payloads, oversized row dumps. Claim under test: the containment layer
//! ([`ContainPolicy`] + per-stage [`StageGuard`]s) quarantines the poisonous
//! source mid-pipeline and completes the pass on survivors, where the strict
//! abort discipline fails the whole pass; and the scans cost <2% when no
//! fault is present.
//!
//! Protocol: per fault rate, `TRIALS` seeded trials draw post-acquisition
//! payload-fault profiles (`FaultConfig::assign_payload`) over the fleet and
//! wrangle once under (a) containment and (b) abort-on-violation. Reported:
//! completion rate, mean output F1 on survivors (completed runs), mean
//! sources quarantined and rows dropped. The overhead section times
//! containment scans against the legacy no-scan path on a faultless fleet
//! (best of `REPS`, wall-clock). The chaos section injects deterministic
//! panics into every guarded stage and shows the pass surviving them.
//! Counts and the containment report are seeded-deterministic — `--counts`
//! prints only that half and CI double-runs it to assert byte-identical
//! output. A full run writes `BENCH_e15.json`.
//!
//! `lint-allow:` exemptions here follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::eval::score_against_truth;
use wrangler_core::{ChaosPolicy, ContainPolicy, Wrangler};
use wrangler_sources::faults::FaultConfig;
use wrangler_sources::{FleetConfig, SourceId, SyntheticFleet};

const SEED: u64 = 1506;
const RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
const TRIALS: u64 = 8;
const REPS: usize = 5;

/// Budgets tight enough that every payload profile is actually caught:
/// `Oversized` blows the row budget, `PathologicalStrings` the cell budget.
fn tight(mut policy: ContainPolicy) -> ContainPolicy {
    policy.max_rows_per_source = 400;
    policy.max_cell_bytes = 2048;
    policy
}

fn e15_fleet() -> SyntheticFleet {
    let cfg = FleetConfig {
        num_products: 120,
        ..default_fleet_config()
    };
    fleet(&cfg, SEED)
}

fn build(f: &SyntheticFleet, policy: ContainPolicy) -> Wrangler {
    session(f, UserContext::completeness_first())
        .with_er_workers(4)
        .with_contain_policy(policy)
}

struct Trial {
    ok: bool,
    f1: f64,
    quarantined: usize,
    dropped_rows: u64,
}

fn run_trial(f: &SyntheticFleet, rate: f64, trial: u64, policy: ContainPolicy) -> Trial {
    let mut w = build(f, policy);
    let profiles = FaultConfig::with_rate(rate, SEED.wrapping_add(trial))
        .assign_payload(f.registry.len());
    for (i, p) in profiles.iter().enumerate() {
        w.set_fault_profile(SourceId(i as u32), *p);
    }
    match w.wrangle() {
        Ok(out) => {
            let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score"); // lint-allow: experiment fixture
            Trial {
                ok: true,
                f1: s.f1,
                quarantined: out.containment.quarantines.len(),
                dropped_rows: out.containment.totals().dropped_rows,
            }
        }
        Err(_) => Trial {
            ok: false,
            f1: 0.0,
            quarantined: w.containment_report().quarantines.len(),
            dropped_rows: w.containment_report().totals().dropped_rows,
        },
    }
}

struct RateRow {
    rate: f64,
    contain_ok: usize,
    abort_ok: usize,
    mean_f1: f64,
    mean_quarantined: f64,
    mean_dropped: f64,
}

fn sweep_rate(f: &SyntheticFleet, rate: f64) -> RateRow {
    let mut contain_ok = 0;
    let mut abort_ok = 0;
    let mut f1_sum = 0.0;
    let mut q_sum = 0usize;
    let mut d_sum = 0u64;
    for t in 0..TRIALS {
        let c = run_trial(f, rate, t, tight(ContainPolicy::contain()));
        if c.ok {
            contain_ok += 1;
            f1_sum += c.f1;
        }
        q_sum += c.quarantined;
        d_sum += c.dropped_rows;
        let a = run_trial(f, rate, t, tight(ContainPolicy::abort()));
        abort_ok += usize::from(a.ok);
    }
    RateRow {
        rate,
        contain_ok,
        abort_ok,
        mean_f1: if contain_ok > 0 {
            f1_sum / contain_ok as f64
        } else {
            0.0
        },
        mean_quarantined: q_sum as f64 / TRIALS as f64,
        mean_dropped: d_sum as f64 / TRIALS as f64,
    }
}

/// Best (minimum) wall-clock seconds of `REPS` fresh wrangles under `policy`.
fn best_wrangle_secs(f: &SyntheticFleet, policy: &ContainPolicy) -> f64 {
    (0..REPS)
        .map(|_| {
            let mut w = build(f, policy.clone());
            let t = Instant::now();
            std::hint::black_box(w.wrangle().expect("faultless wrangle")); // lint-allow: experiment fixture
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let counts_only = std::env::args().any(|a| a == "--counts");
    if counts_only {
        // Deterministic half only: the 30%-fault containment run at trial 0,
        // counts plus the containment report, byte-identical across runs.
        let f = e15_fleet();
        let mut w = build(&f, tight(ContainPolicy::contain()));
        let profiles = FaultConfig::with_rate(0.3, SEED).assign_payload(f.registry.len());
        for (i, p) in profiles.iter().enumerate() {
            w.set_fault_profile(SourceId(i as u32), *p);
        }
        w.wrangle().expect("containment completes on survivors"); // lint-allow: experiment fixture
        print!("{}", w.metrics().render_counts());
        print!("{}", w.containment_report().render());
        return;
    }

    println!("E15: stage-level containment vs abort under mid-pipeline poison");
    println!("(contain = quarantine poisonous sources, complete on survivors;");
    println!(" abort = first violation fails the pass; {TRIALS} seeded trials/rate;");
    println!(" f1/quar/drop averaged over completed containment trials)\n");

    let f = e15_fleet();
    let widths = [7, 11, 9, 7, 7, 7];
    println!(
        "{}",
        header(
            &["fault%", "contain-ok", "abort-ok", "f1", "quar", "drop"],
            &widths
        )
    );
    let mut rows = Vec::new();
    for &rate in &RATES {
        let r = sweep_rate(&f, rate);
        println!(
            "{}",
            row(
                &[
                    format!("{:.0}", rate * 100.0),
                    format!("{}/{}", r.contain_ok, TRIALS),
                    format!("{}/{}", r.abort_ok, TRIALS),
                    format!("{:.3}", r.mean_f1),
                    format!("{:.1}", r.mean_quarantined),
                    format!("{:.0}", r.mean_dropped),
                ],
                &widths
            )
        );
        rows.push(r);
    }

    // --- Containment overhead on a faultless fleet --------------------------
    let off_s = best_wrangle_secs(&f, &ContainPolicy::off());
    let on_s = best_wrangle_secs(&f, &ContainPolicy::contain());
    let overhead_pct = 100.0 * (on_s - off_s) / off_s;
    println!(
        "\ncontainment overhead at fault-rate 0 (best of {REPS}): \
         off = {:.1}ms, contain = {:.1}ms, overhead = {overhead_pct:.2}%",
        1e3 * off_s,
        1e3 * on_s
    );

    // --- Chaos: deterministic panic injection into every guarded stage ------
    let chaos = ChaosPolicy::new(0.3, SEED);
    let mut w = build(&f, tight(ContainPolicy::contain()).with_chaos(chaos));
    let chaos_ok = w.wrangle().is_ok();
    let chaos_report = w.containment_report().clone();
    let chaos_panics = chaos_report.totals().panics_caught;
    let mut wa = build(
        &f,
        tight(ContainPolicy::abort()).with_chaos(ChaosPolicy::new(0.3, SEED)),
    );
    let chaos_abort_err = wa.wrangle().is_err();
    println!(
        "\nchaos harness (panic rate 30% across all guarded stages): contain {} \
         with {chaos_panics} panics caught and {} sources quarantined; abort {}",
        if chaos_ok { "completed" } else { "FAILED" },
        chaos_report.quarantines.len(),
        if chaos_abort_err {
            "failed as designed"
        } else {
            "UNEXPECTEDLY COMPLETED"
        },
    );

    // --- Verdicts ------------------------------------------------------------
    let at30 = rows.iter().find(|r| (r.rate - 0.3).abs() < 1e-9).expect("rate table covers 30%"); // lint-allow: const fixture
    let verdict_complete = at30.contain_ok as f64 / TRIALS as f64 >= 0.95;
    let verdict_abort = at30.abort_ok == 0;
    let verdict_overhead = overhead_pct < 2.0;
    println!(
        "\nverdict: containment completion at 30% faults {} the 95% floor \
         ({}/{TRIALS}); abort baseline {} ({}/{TRIALS}); scan overhead {} the 2% \
         ceiling ({overhead_pct:.2}%); chaos pass {}",
        if verdict_complete { "clears" } else { "MISSES" },
        at30.contain_ok,
        if verdict_abort { "fails outright" } else { "SURVIVES" },
        at30.abort_ok,
        if verdict_overhead { "under" } else { "OVER" },
        if chaos_ok && chaos_abort_err { "contained" } else { "NOT CONTAINED" },
    );

    // --- Machine-readable results -------------------------------------------
    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"fault_rate\":{:.2},\"contain_ok\":{},\"abort_ok\":{},\"trials\":{TRIALS},\
                 \"mean_f1\":{:.4},\"mean_quarantined\":{:.2},\"mean_dropped_rows\":{:.1}}}",
                r.rate, r.contain_ok, r.abort_ok, r.mean_f1, r.mean_quarantined, r.mean_dropped
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e15_containment\",\"seed\":{SEED},\
         \"overhead_pct\":{overhead_pct:.4},\
         \"chaos\":{{\"contain_completed\":{chaos_ok},\"panics_caught\":{chaos_panics},\
         \"abort_failed\":{chaos_abort_err}}},\
         \"rates\":[{}]}}\n",
        rows_json.join(",")
    );
    wrangler_bench::write_artifact("BENCH_e15.json", &json);

    println!("\nShape expected: abort-ok collapses as soon as any poison profile lands");
    println!("(one bad source fails the whole pass); contain-ok stays at or near full");
    println!("completion with F1 degrading gracefully as survivors thin out. The scans");
    println!("are a single pass over union rows — noise next to ER.");
}
