//! Lint ratchet: compare the full pipeline's static findings against the
//! committed `lint-baseline.json` and fail on anything *new*.
//!
//! The pipeline legitimately carries advisory findings today (messy-number
//! normalization is lossy, and the analyzer says so). Hard-failing on every
//! warning would force either silencing the analyzer or a big-bang cleanup;
//! instead this binary grandfathers the committed findings and blocks only
//! regressions: any diagnostic absent from the baseline — new code, new
//! locus, new message — fails the build with exit code 1.
//!
//! The probe session is fully seeded (standard fleet, fixed filter and
//! projection, Warn gate so findings are collected without blocking), so the
//! merged canonical report is byte-stable across runs and machines.
//!
//! Usage:
//!   lint_gate            compare against lint-baseline.json, exit 1 on new findings
//!   lint_gate --write    regenerate lint-baseline.json from the current pipeline

use std::process::ExitCode;

use wrangler_bench::{default_fleet_config, fleet, session};
use wrangler_context::UserContext;
use wrangler_core::{ContainPolicy, OptMode};
use wrangler_lint::{GateMode, Report};
use wrangler_table::Expr;

const SEED: u64 = 1606;
const BASELINE: &str = "lint-baseline.json";

fn probe_report() -> Report {
    let cfg = default_fleet_config();
    let f = fleet(&cfg, SEED);
    let mut w = session(&f, UserContext::balanced("lint-gate"))
        .with_lint_gate(GateMode::Warn)
        .with_contain_policy(ContainPolicy::off())
        .with_opt_mode(OptMode::Optimized)
        .with_row_filter(Expr::col("category").eq(Expr::lit("electronics")))
        .with_output_columns(vec!["sku".into(), "name".into(), "price".into()]);
    if let Err(e) = w.wrangle() {
        eprintln!("lint_gate: probe wrangle failed: {e}");
        std::process::exit(2);
    }
    // Merged + canonicalized across every origin: per-source mapping checks,
    // the plan-step audit, and the whole-plan IR analysis.
    w.lint_report()
}

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write");
    let report = probe_report();

    if write {
        let json = report.to_baseline_json();
        if let Err(e) = wrangler_core::write_atomic(std::path::Path::new(BASELINE), json.as_bytes())
        {
            eprintln!("lint_gate: cannot write {BASELINE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint_gate: wrote {BASELINE} ({} grandfathered findings)",
            report.diagnostics().len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(BASELINE) {
        Ok(s) => match Report::from_baseline_json(&s) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lint_gate: {BASELINE} is corrupt: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("lint_gate: cannot read {BASELINE}: {e} (run with --write to create it)");
            return ExitCode::from(2);
        }
    };

    let fresh = report.newly_versus(&baseline);
    if fresh.is_empty() {
        println!(
            "lint_gate: ok — {} findings, all grandfathered by {BASELINE}",
            report.diagnostics().len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "lint_gate: {} NEW finding(s) versus {BASELINE} — fix them or consciously \
         regenerate the baseline with --write:",
        fresh.len()
    );
    for d in &fresh {
        eprintln!("  {d}");
    }
    ExitCode::FAILURE
}
