//! E11 — robustness of acquisition under source faults (§2.2, §4.2).
//!
//! The paper's setting assumes "thousands of sources" reached over the open
//! web; in production a fraction of them is down, slow, rate-limited, or
//! serving damaged payloads at any moment. Claim under test: a resilient
//! acquisition layer (bounded backoff retries + circuit breakers + graceful
//! degradation) preserves coverage and quality as the fault rate grows,
//! where the naive disciplines — abort on first failure, or blind retry —
//! either fail outright or burn unbounded retry cost.
//!
//! Everything is seeded and runs on virtual ticks: re-running this binary
//! reproduces the table exactly.

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::acquire::AcquisitionMode;
use wrangler_core::eval::score_against_truth;
use wrangler_sources::faults::{FaultConfig, FaultProfile};

struct Cell {
    ok: bool,
    coverage: f64,
    accuracy: f64,
    utility: f64,
    attempts: u64,
    skipped: usize,
    degraded: usize,
}

fn run(mode: AcquisitionMode, fault_rate: f64, seed: u64) -> Cell {
    let cfg = default_fleet_config();
    let f = fleet(&cfg, seed);
    let mut w = session(&f, UserContext::completeness_first());
    w.acquisition.mode = mode;
    w.inject_faults(&FaultConfig::with_rate(fault_rate, seed.wrapping_add(100)));
    match w.wrangle() {
        Ok(out) => {
            let s = score_against_truth(&out.table, &f.truth, 0.005).expect("score");
            Cell {
                ok: true,
                coverage: s.coverage,
                accuracy: s.price_accuracy,
                utility: out.utility,
                attempts: out.acquisition_attempts,
                skipped: out.skipped_sources.len(),
                degraded: out.degraded_sources.len(),
            }
        }
        Err(_) => Cell {
            ok: false,
            coverage: 0.0,
            accuracy: 0.0,
            utility: 0.0,
            attempts: w.acquisition_summary().attempts,
            skipped: w.acquisition_summary().skipped.len(),
            degraded: 0,
        },
    }
}

fn main() {
    println!("E11: acquisition resilience vs fault rate (20 sources, 200 products)");
    println!("(abort = fail on first error; blind = up to 25 immediate retries then");
    println!(" fail; resilient = backoff + circuit breakers + degrade gracefully)\n");

    let modes: [(&str, AcquisitionMode); 3] = [
        ("abort", AcquisitionMode::AbortOnFailure),
        ("blind", AcquisitionMode::BlindRetry { attempts: 25 }),
        ("resilient", AcquisitionMode::Resilient),
    ];
    let widths = [7, 10, 9, 9, 9, 9, 6, 5];
    println!(
        "{}",
        header(
            &["fault%", "mode", "ok", "coverage", "accuracy", "utility", "tries", "skip"],
            &widths
        )
    );
    let seed = 1106;
    for &rate in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        for (name, mode) in modes {
            let c = run(mode, rate, seed);
            println!(
                "{}",
                row(
                    &[
                        format!("{:.0}", rate * 100.0),
                        name.to_string(),
                        if c.ok { "yes" } else { "FAIL" }.to_string(),
                        format!("{:.3}", c.coverage),
                        format!("{:.3}", c.accuracy),
                        format!("{:.3}", c.utility),
                        format!("{}", c.attempts),
                        format!("{}+{}d", c.skipped, c.degraded),
                    ],
                    &widths
                )
            );
        }
        println!();
    }

    // The degenerate case: every source hard-down must be a structured
    // error, not a panic or a hang.
    let cfg = default_fleet_config();
    let f = fleet(&cfg, seed);
    let mut w = session(&f, UserContext::completeness_first());
    let n = f.registry.len();
    w.inject_faults(&FaultConfig::with_rate(0.0, 0));
    for i in 0..n {
        w.set_fault_profile(wrangler_sources::SourceId(i as u32), FaultProfile::HardDown);
    }
    match w.wrangle() {
        Err(e) => println!("all-sources-down: clean error: {e}"),
        Ok(_) => println!("all-sources-down: UNEXPECTED success"),
    }

    println!("\nShape expected: at 0% all modes agree. As the fault rate grows,");
    println!("abort fails as soon as any selected source is faulty; blind retry");
    println!("burns an order of magnitude more attempts before failing anyway;");
    println!("resilient completes on the surviving subset with gently declining");
    println!("coverage, strictly beating both baselines at >= 20% faults.");
}
