//! Internal diagnostic: inspect mapping/ER/fusion health on the standard
//! fleet. Not an experiment — a debugging aid.

use wrangler_bench::{fleet, session};
use wrangler_context::UserContext;
use wrangler_sources::FleetConfig;

fn main() {
    let cfg = FleetConfig {
        num_products: 150,
        num_sources: 25,
        now: 20,
        coverage: (0.3, 0.8),
        error_rate: (0.02, 0.3),
        null_rate: (0.0, 0.1),
        staleness: (0, 12),
        ..FleetConfig::default()
    };
    let f = fleet(&cfg, 2026);
    let mut w = session(&f, UserContext::completeness_first());
    let out = w.wrangle().unwrap();
    println!(
        "selected {} sources, {} entities",
        out.selected_sources.len(),
        out.entities
    );

    // Mapping health per source: which target fields are bound?
    for s in f.registry.iter().take(8) {
        let m = wrangler_mapping::generate_mapping(
            &s.table,
            w.target(),
            &wrangler_bench::target_sample(&f),
            Some(&wrangler_context::Ontology::ecommerce()),
            &wrangler_match::MatchConfig::default(),
        );
        let bound: Vec<String> = w
            .target()
            .fields()
            .iter()
            .zip(&m.bindings)
            .map(|(fld, b)| match b {
                Some(i) => format!("{}<-{}", fld.name, s.table.schema().names()[*i]),
                None => format!("{}<-∅", fld.name),
            })
            .collect();
        println!(
            "{}: [{}] cov={:.2}",
            s.meta.name,
            bound.join(", "),
            m.coverage()
        );
    }
    // Entity size histogram.
    let mut sizes = std::collections::HashMap::new();
    for r in 0..w.union_len() {
        *sizes
            .entry(w.entity_of_union_row(r).unwrap())
            .or_insert(0usize) += 1;
    }
    let mut hist = std::collections::BTreeMap::new();
    for (_, n) in sizes {
        *hist.entry(n).or_insert(0usize) += 1;
    }
    println!("cluster-size histogram (size: count): {hist:?}");
    println!("union rows: {}", w.union_len());
}
