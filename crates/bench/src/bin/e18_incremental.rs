//! E18 — incremental rewrangling: update k of 40 sources, pay ~k/40 of a
//! cold pass, byte-identically (§4.2 "pay-as-you-go", §2.2 reuse).
//!
//! Real source fleets churn one feed at a time: a provider ships a corrected
//! price file while the other 39 sources are untouched. Claim under test:
//! the session's per-source-partition memoization recomputes only the dirty
//! partitions — clean union blocks replay from memos, clean-clean ER pairs
//! replay through the index-remap fast path, and the pair cache is evicted
//! partition-scoped rather than wiped — while the delivered table stays
//! byte-identical (`f64::to_bits`, canonical table hash) to a cold session
//! that never memoized anything.
//!
//! Protocol: one warm 40-source session per update count k ∈
//! {0, 1, 2, 4, 8, 20, 40}; after a cold first pass, k sources receive a
//! deterministically nudged payload via `update_source`, and the follow-up
//! pass is timed (best of 3, cloning the post-update state per rep so every
//! rep replays the same memo state). The cold comparator is a clone of the
//! *same* post-update state with the incremental engine disabled — which
//! drops every stage memo AND the content-keyed pair-score cache, so it
//! recomputes from scratch exactly as a pre-incremental session would on a
//! source update. The user context is completeness-dominant on purpose:
//! all-relevant selection keeps the selected set stable when an update
//! bumps a source's freshness — under marginal-gain selection the fleet
//! legitimately reshuffles and a partition comparison would be meaningless
//! (DESIGN.md §16). `--counts` prints the deterministic half (k=1 pass
//! counters + outcome fingerprint) for CI double-run diffing. A full run
//! writes `BENCH_e18.json`; `scripts/check_e18_incremental.py` gates the
//! k=1 ratio, the identity column and the pair-cache retention.
//!
//! `lint-allow:` exemptions follow the experiment-binary convention:
//! drivers may panic on their own fixtures.

use std::time::Instant;

use wrangler_bench::{default_fleet_config, fleet, header, row, session};
use wrangler_context::UserContext;
use wrangler_core::{WrangleOutcome, Wrangler};
use wrangler_sources::{SourceId, SyntheticFleet};
use wrangler_table::{wire, Table, Value};

const SEED: u64 = 1807;
const TIMING_REPS: usize = 3;
const UPDATE_COUNTS: [usize; 7] = [0, 1, 2, 4, 8, 20, 40];

fn e18_fleet() -> SyntheticFleet {
    let mut cfg = default_fleet_config();
    cfg.num_products = 100;
    cfg.num_sources = 40;
    fleet(&cfg, SEED)
}

fn build(f: &SyntheticFleet) -> Wrangler {
    session(f, UserContext::completeness_first()).with_er_workers(4)
}

/// Deterministic provider update: the first numeric/string cell nudged,
/// same schema.
fn nudged(table: &Table) -> Table {
    let schema = table.schema().clone();
    let mut cols: Vec<Vec<Value>> = (0..table.num_columns())
        .map(|i| table.column(i).unwrap().to_vec()) // lint-allow: fixture shape
        .collect();
    'outer: for col in cols.iter_mut() {
        for v in col.iter_mut() {
            match v {
                Value::Float(f) => {
                    *f += 1.0;
                    break 'outer;
                }
                Value::Int(n) => {
                    *n += 1;
                    break 'outer;
                }
                Value::Str(s) => {
                    s.push_str(" v2");
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    Table::from_columns(schema, cols).expect("same shape") // lint-allow: fixture shape
}

/// Everything "byte-identical" covers: the delivered table plus the shape
/// facts a reader would notice.
fn fingerprint(out: &WrangleOutcome) -> (u64, String) {
    let state = format!(
        "sel={:?} skip={:?} ent={} util={}",
        out.selected_sources,
        out.skipped_sources,
        out.entities,
        out.utility.to_bits(),
    );
    (wire::table_hash(&out.table), state)
}

/// A warm session one cold pass in, with the first k sources (selected
/// first, so k=1 always dirties a live partition) updated. Returns the
/// session and the first pass's counter snapshot (counters are cumulative;
/// deltas against this snapshot isolate the incremental pass).
fn warmed_and_updated(
    f: &SyntheticFleet,
    k: usize,
) -> (Wrangler, std::collections::BTreeMap<String, u64>) {
    let mut w = build(f);
    let first = w.wrangle().expect("cold first pass"); // lint-allow: experiment fixture
    let mut order: Vec<SourceId> = first.selected_sources.clone();
    for i in 0..f.registry.len() {
        let id = SourceId(i as u32);
        if !order.contains(&id) {
            order.push(id);
        }
    }
    for id in order.into_iter().take(k) {
        let t = nudged(&f.registry.get(id).expect("fixture source").table); // lint-allow: experiment fixture
        assert!(w.update_source(id, t).expect("update applies")); // lint-allow: experiment fixture
    }
    (w, first.metrics.counts)
}

fn main() {
    if std::env::args().any(|a| a == "--counts") {
        // Deterministic half: cold pass, 1-source update, incremental pass;
        // print the session's counters + outcome fingerprint. CI double-runs
        // this and diffs the output byte-for-byte.
        let f = e18_fleet();
        let (mut w, _) = warmed_and_updated(&f, 1);
        let out = w.wrangle().expect("incremental pass"); // lint-allow: experiment fixture
        let (th, st) = fingerprint(&out);
        print!("{}", out.metrics.render_counts());
        println!("table_hash={th:016x}");
        println!("state={st}");
        return;
    }

    println!("E18: update k of 40 sources, rewrangle incrementally vs cold");
    println!("(per k: 1 cold warm-up pass, k payload updates, then the follow-up pass");
    println!(" timed best-of-{TIMING_REPS}; cold comparator = same state, every memo and");
    println!(" cached pair score dropped)\n");

    let f = e18_fleet();
    let widths = [4, 10, 10, 7, 10, 10, 9, 10];
    println!(
        "{}",
        header(
            &[
                "k",
                "cold(ms)",
                "incr(ms)",
                "ratio",
                "blk reuse",
                "remapped",
                "bytes%",
                "identical"
            ],
            &widths
        )
    );

    let mut rows_json: Vec<String> = Vec::new();
    let mut ratio_at_1 = f64::NAN;
    let mut all_identical = true;
    let mut retention = f64::NAN;
    for k in UPDATE_COUNTS {
        let (base, snap) = warmed_and_updated(&f, k);
        // Timed incremental reps: clone the post-update state so every rep
        // starts from the same memos.
        let mut incr_secs = f64::INFINITY;
        let mut warm_out = None;
        for _ in 0..TIMING_REPS {
            let mut w = base.clone();
            let t = Instant::now();
            let out = std::hint::black_box(w.wrangle().expect("incremental pass")); // lint-allow: experiment fixture
            incr_secs = incr_secs.min(t.elapsed().as_secs_f64());
            warm_out = Some(out);
        }
        let mut cold_secs = f64::INFINITY;
        let mut cold_out = None;
        for _ in 0..TIMING_REPS {
            let mut w = base.clone();
            w.set_incr_enabled(false);
            let t = Instant::now();
            let out = std::hint::black_box(w.wrangle().expect("cold pass")); // lint-allow: experiment fixture
            cold_secs = cold_secs.min(t.elapsed().as_secs_f64());
            cold_out = Some(out);
        }
        let warm_out = warm_out.expect("reps ran"); // lint-allow: experiment fixture
        let cold_out = cold_out.expect("reps ran"); // lint-allow: experiment fixture
        let identical = fingerprint(&warm_out) == fingerprint(&cold_out);
        all_identical &= identical;
        let ratio = incr_secs / cold_secs;
        if k == 1 {
            ratio_at_1 = ratio;
            let m = &warm_out.metrics.counts;
            let evicted = m.get("incr.pair_cache.evicted").copied().unwrap_or(0);
            let retained = m.get("incr.pair_cache.retained").copied().unwrap_or(0);
            retention = retained as f64 / (evicted + retained).max(1) as f64;
        }
        let delta = |key: &str| {
            warm_out.metrics.counts.get(key).copied().unwrap_or(0)
                - snap.get(key).copied().unwrap_or(0)
        };
        let blocks_reused = delta("incr.union.reused");
        let remapped = delta("incr.er.pairs_remapped");
        let bytes_scanned = delta("scan.bytes");
        let bytes_skipped = delta("incr.union.bytes_skipped");
        let bytes_pct = if bytes_scanned + bytes_skipped > 0 {
            100.0 * bytes_skipped as f64 / (bytes_scanned + bytes_skipped) as f64
        } else {
            0.0
        };
        println!(
            "{}",
            row(
                &[
                    format!("{k}"),
                    format!("{:.2}", 1e3 * cold_secs),
                    format!("{:.2}", 1e3 * incr_secs),
                    format!("{ratio:.3}"),
                    format!("{blocks_reused}"),
                    format!("{remapped}"),
                    format!("{bytes_pct:.1}"),
                    if identical { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        rows_json.push(format!(
            "{{\"k\":{k},\"cold_secs\":{cold_secs:.6},\"incr_secs\":{incr_secs:.6},\
             \"ratio\":{ratio:.4},\"blocks_reused\":{blocks_reused},\
             \"pairs_remapped\":{remapped},\"bytes_skipped_pct\":{bytes_pct:.2},\
             \"identical\":{identical}}}"
        ));
    }

    let verdict_ratio = ratio_at_1 <= 0.25;
    let verdict_retention = retention >= 0.90;
    println!(
        "\nverdict: 1-source update costs {:.0}% of cold ({} the 25% ceiling); \
         outputs {}; pair-cache retention {:.1}% ({} the 90% floor)",
        100.0 * ratio_at_1,
        if verdict_ratio { "under" } else { "OVER" },
        if all_identical {
            "all byte-identical"
        } else {
            "DIVERGED"
        },
        100.0 * retention,
        if verdict_retention { "above" } else { "BELOW" },
    );

    let json = format!(
        "{{\"experiment\":\"e18_incremental\",\"seed\":{SEED},\"num_sources\":40,\
         \"num_products\":100,\"timing_reps\":{TIMING_REPS},\
         \"pair_cache_retention\":{retention:.4},\"rows\":[{}]}}\n",
        rows_json.join(",")
    );
    wrangler_bench::write_artifact("BENCH_e18.json", &json);

    println!("\nShape expected: ratio climbs roughly linearly with k — near zero at k=0");
    println!("(pure replay: ER and fuse reuse wholesale), ~1/40 of cold at k=1, and ~1.0");
    println!("at k=40 where nothing is clean. The identity column never reads NO: reuse");
    println!("is proof-carrying (PartitionIsolated) and content-keyed, so a memo can only");
    println!("replay bytes the cold path would recompute.");
}
