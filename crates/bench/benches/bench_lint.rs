//! Static-analysis benchmarks: the pre-flight gate must stay cheap relative
//! to mapping execution, or nobody will leave it on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wrangler_bench::{default_fleet_config, fleet, target_sample};
use wrangler_context::Ontology;
use wrangler_lint::{check_mapping, check_predicate, preflight, PlanStep};
use wrangler_mapping::generate_mapping;
use wrangler_match::MatchConfig;
use wrangler_sources::SourceId;
use wrangler_table::{DataType, Expr};

fn bench_lint(c: &mut Criterion) {
    let cfg = default_fleet_config();
    let f = fleet(&cfg, 3);
    let sample = target_sample(&f);
    let source = &f.registry.get(SourceId(0)).unwrap().table;
    let ont = Ontology::ecommerce();
    let mapping = generate_mapping(
        source,
        sample.schema(),
        &sample,
        Some(&ont),
        &MatchConfig::default(),
    );
    let steps = vec![
        PlanStep::deterministic("selection"),
        PlanStep::deterministic("mapping-generation")
            .with_randomness(true)
            .with_parallelism(true),
        PlanStep::deterministic("fusion").with_hash_iteration(true),
    ];
    let predicate = Expr::col("price")
        .cast(DataType::Float)
        .gt(Expr::lit(10.0))
        .and(Expr::col("brand").is_null().not());

    c.bench_function("lint/check_mapping", |b| {
        b.iter(|| black_box(check_mapping(&mapping, source.schema()).len()))
    });
    c.bench_function("lint/check_predicate", |b| {
        b.iter(|| black_box(check_predicate(&predicate, sample.schema()).len()))
    });
    c.bench_function("lint/preflight", |b| {
        b.iter(|| black_box(preflight(&mapping, source.schema(), &steps).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_lint
}
criterion_main!(benches);
