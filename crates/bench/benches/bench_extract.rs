//! Extraction benchmarks: rendering, wrapper application, induction, repair.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wrangler_extract::induce::{induce_wrapper, Annotation};
use wrangler_extract::repair::{repair_wrapper, RepairConfig};
use wrangler_extract::Template;
use wrangler_table::{Table, Value};

fn catalog(n: usize) -> Table {
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::from(format!("P{i:05}")),
                Value::from(format!("Product Line {} Item {}", i % 31, i)),
                Value::Float((i % 499) as f64 + 0.99),
            ]
        })
        .collect();
    Table::literal(&["sku", "name", "price"], rows).expect("aligned")
}

fn ann(t: &Table, i: usize) -> Annotation {
    Annotation::of(&[
        ("sku", &t.get_named(i, "sku").unwrap().render()),
        ("name", &t.get_named(i, "name").unwrap().render()),
        ("price", &t.get_named(i, "price").unwrap().render()),
    ])
}

fn bench_extract(c: &mut Criterion) {
    let data = catalog(500);
    let template = Template::listing(&["sku", "name", "price"]);
    let page = template.render(&data);

    c.bench_function("extract/render_500", |b| {
        b.iter(|| black_box(template.render(&data).len()))
    });
    c.bench_function("extract/wrapper_apply_500", |b| {
        let w = template.oracle_wrapper();
        b.iter(|| black_box(w.extract(&page).unwrap().records_found))
    });
    let small = catalog(100);
    let small_page = template.render(&small);
    c.bench_function("extract/induce_2_examples_100", |b| {
        b.iter(|| {
            black_box(induce_wrapper(&small_page, &[ann(&small, 3), ann(&small, 50)]).unwrap())
        })
    });
    c.bench_function("extract/informed_repair_100", |b| {
        let wrapper = template.oracle_wrapper();
        let drifted = template.drift(5).render(&small);
        let cfg = RepairConfig {
            stable_columns: vec!["sku".into(), "name".into()],
            ..RepairConfig::default()
        };
        b.iter(|| black_box(repair_wrapper(&wrapper, &drifted, &small, &cfg).is_some()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extract
}
criterion_main!(benches);
