//! Fusion benchmarks: conflict resolution and truth discovery at claim scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wrangler_fusion::strategies::{fuse_attribute, SourceContext, Strategy};
use wrangler_fusion::truthfinder::{truthfinder, TruthFinderConfig};
use wrangler_fusion::ClaimSet;
use wrangler_table::Value;

/// `entities` entities × `sources` sources, ~20% disagreement.
fn claims(entities: usize, sources: usize) -> ClaimSet {
    let mut cs = ClaimSet::new(sources);
    cs.rel_tol = 1e-6;
    for e in 0..entities {
        for s in 0..sources {
            let v = if (e + s) % 5 == 0 {
                Value::Float(999.0) // dissent
            } else {
                Value::Float(e as f64 * 1.5)
            };
            cs.add(e, 0, v, s);
        }
    }
    cs
}

fn bench_fusion(c: &mut Criterion) {
    let cs = claims(1_000, 10);
    let ctx = SourceContext {
        trust: (0..10).map(|i| 0.5 + 0.04 * i as f64).collect(),
        age: (0..10).map(|i| i as u64).collect(),
    };
    c.bench_function("fusion/majority_1k_slots", |b| {
        b.iter(|| {
            let mut n = 0;
            for e in 0..1_000 {
                if fuse_attribute(&cs, e, 0, Strategy::MajorityVote, &ctx).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    c.bench_function("fusion/trust_fresh_1k_slots", |b| {
        b.iter(|| {
            let mut n = 0;
            for e in 0..1_000 {
                if fuse_attribute(
                    &cs,
                    e,
                    0,
                    Strategy::TrustAndFreshness { half_life: 4.0 },
                    &ctx,
                )
                .is_some()
                {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    c.bench_function("fusion/truthfinder_10k_claims", |b| {
        b.iter(|| {
            black_box(truthfinder(&cs, &TruthFinderConfig::default(), &Vec::new()).iterations)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fusion
}
criterion_main!(benches);
