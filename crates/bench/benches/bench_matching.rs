//! Schema-matching benchmarks: the CPU-heavy step of mapping generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wrangler_bench::{default_fleet_config, fleet, target_sample};
use wrangler_context::Ontology;
use wrangler_match::strsim;
use wrangler_match::{match_schemas, select_one_to_one, MatchConfig};
use wrangler_sources::{FleetConfig, SourceId};

fn bench_matching(c: &mut Criterion) {
    let cfg = FleetConfig {
        num_sources: 2,
        num_products: 500,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, 3);
    let sample = target_sample(&f);
    let source = &f.registry.get(SourceId(0)).unwrap().table;
    let ont = Ontology::ecommerce();

    c.bench_function("match/schemas_500rows", |b| {
        b.iter(|| {
            black_box(match_schemas(&sample, source, Some(&ont), &MatchConfig::default()).len())
        })
    });
    c.bench_function("match/select_one_to_one", |b| {
        let corrs = match_schemas(&sample, source, Some(&ont), &MatchConfig::default());
        b.iter(|| black_box(select_one_to_one(&corrs).len()))
    });
    c.bench_function("match/jaro_winkler", |b| {
        b.iter(|| {
            black_box(strsim::jaro_winkler(
                "Acme Turbo Widget 42",
                "Acme Trubo Widgt 42",
            ))
        })
    });
    c.bench_function("match/levenshtein", |b| {
        b.iter(|| {
            black_box(strsim::levenshtein(
                "Acme Turbo Widget 42",
                "Acme Trubo Widgt 42",
            ))
        })
    });
    c.bench_function("match/name_similarity", |b| {
        b.iter(|| black_box(strsim::name_similarity("unit_price", "sale price usd")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matching
}
criterion_main!(benches);
