//! End-to-end pipeline benchmarks: a full wrangle (the E1 hot path) and the
//! incremental rewrangle after feedback (E7b's claim, as a microbenchmark).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wrangler_bench::{default_fleet_config, fleet, session};
use wrangler_context::UserContext;
use wrangler_feedback::{FeedbackItem, FeedbackTarget, RoutingMode, Verdict};
use wrangler_sources::FleetConfig;

fn bench_pipeline(c: &mut Criterion) {
    let cfg = FleetConfig {
        num_products: 100,
        num_sources: 10,
        ..default_fleet_config()
    };
    let f = fleet(&cfg, 12);

    c.bench_function("pipeline/full_wrangle_10src_100prod", |b| {
        b.iter_batched(
            || session(&f, UserContext::balanced("bench")),
            |mut w| black_box(w.wrangle().unwrap().entities),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("pipeline/incremental_rewrangle_one_slot", |b| {
        b.iter_batched(
            || {
                let mut w = session(&f, UserContext::balanced("bench"));
                w.routing = RoutingMode::Siloed;
                w.wrangle().unwrap();
                let price_attr = w.target().index_of("price").unwrap();
                w.give_feedback(FeedbackItem::expert(
                    FeedbackTarget::Value {
                        entity: 0,
                        attr: price_attr,
                        value: None,
                    },
                    Verdict::Negative,
                    1.0,
                ));
                w
            },
            |mut w| black_box(w.rewrangle().unwrap().entities),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("pipeline/plan_derivation", |b| {
        let user = UserContext::accuracy_first();
        b.iter(|| black_box(wrangler_core::Plan::derive(&user)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
