//! Entity-resolution benchmarks: blocking vs naive candidate generation and
//! clustering (the E7a hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wrangler_resolve::{
    candidates_blocked, candidates_naive, candidates_sorted_neighborhood, cluster_pairs,
    match_pairs, ErConfig, FieldSim, SimKind,
};
use wrangler_table::{Table, Value};

fn dup_table(n: usize) -> Table {
    let rows = (0..n)
        .map(|i| {
            let base = i / 3; // every product appears ~3 times
            vec![
                Value::from(format!("SKU-{base:05}")),
                Value::from(format!(
                    "{} {} {}",
                    ["Acme", "Bolt", "Stark", "Wayne"][base % 4],
                    ["Turbo", "Mini", "Mega"][base % 3],
                    base
                )),
                Value::Float((base % 211) as f64 + 0.99),
            ]
        })
        .collect();
    Table::literal(&["sku", "name", "price"], rows).expect("aligned")
}

fn cfg() -> ErConfig {
    ErConfig {
        fields: vec![
            FieldSim {
                column: "sku".into(),
                weight: 2.0,
                kind: SimKind::Exact,
            },
            FieldSim {
                column: "name".into(),
                weight: 3.0,
                kind: SimKind::Text,
            },
        ],
        threshold: 0.85,
    }
}

fn bench_resolve(c: &mut Criterion) {
    let t = dup_table(2_000);
    c.bench_function("resolve/candidates_blocked_2k", |b| {
        b.iter(|| black_box(candidates_blocked(&t, "name").unwrap().len()))
    });
    c.bench_function("resolve/candidates_sorted_neighborhood_2k", |b| {
        b.iter(|| black_box(candidates_sorted_neighborhood(&t, "name", 5).unwrap().len()))
    });
    c.bench_function("resolve/match_blocked_2k", |b| {
        let cand = candidates_blocked(&t, "name").unwrap();
        b.iter(|| black_box(match_pairs(&t, &cand, &cfg()).unwrap().len()))
    });
    let small = dup_table(400);
    c.bench_function("resolve/match_naive_400", |b| {
        let cand = candidates_naive(small.num_rows());
        b.iter(|| black_box(match_pairs(&small, &cand, &cfg()).unwrap().len()))
    });
    c.bench_function("resolve/cluster_100k_pairs", |b| {
        let pairs: Vec<(usize, usize)> = (0..100_000)
            .map(|i| (i % 50_000, (i + 1) % 50_000))
            .collect();
        b.iter(|| black_box(cluster_pairs(50_000, pairs.iter().copied()).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_resolve
}
criterion_main!(benches);
