//! Microbenchmarks for the table substrate: the hot relational operators
//! every pipeline stage leans on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wrangler_table::ops::{self, Agg};
use wrangler_table::{Expr, Table, Value};

fn make_table(n: usize) -> Table {
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::from(format!("sku{:06}", i % (n / 4 + 1))),
                Value::from(format!("vendor{}", i % 17)),
                Value::Float((i % 997) as f64 * 0.5),
                Value::Int(i as i64),
            ]
        })
        .collect();
    Table::literal(&["sku", "vendor", "price", "n"], rows).expect("aligned")
}

fn bench_ops(c: &mut Criterion) {
    let t = make_table(10_000);
    c.bench_function("table/filter_10k", |b| {
        let pred = Expr::col("price").gt(Expr::lit(200.0));
        b.iter(|| black_box(ops::filter(&t, &pred).unwrap().num_rows()))
    });
    c.bench_function("table/sort_10k", |b| {
        b.iter(|| black_box(ops::sort_by(&t, &["price", "sku"]).unwrap().num_rows()))
    });
    c.bench_function("table/group_by_10k", |b| {
        b.iter(|| {
            black_box(
                ops::group_by(
                    &t,
                    &["vendor"],
                    &[(Agg::Mean, "price"), (Agg::CountAll, "n")],
                )
                .unwrap()
                .num_rows(),
            )
        })
    });
    let right = make_table(2_000);
    c.bench_function("table/hash_join_10k_x_2k", |b| {
        b.iter(|| black_box(ops::join(&t, &right, "sku", "sku").unwrap().num_rows()))
    });
    c.bench_function("table/distinct_10k", |b| {
        b.iter(|| black_box(ops::distinct(&t).num_rows()))
    });
    c.bench_function("table/csv_roundtrip_2k", |b| {
        let small = make_table(2_000);
        b.iter_batched(
            || wrangler_table::csv::write_csv(&small),
            |text| black_box(wrangler_table::csv::read_csv(&text).unwrap().num_rows()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops
}
criterion_main!(benches);
