//! Mapping generation from schema-match correspondences.

use wrangler_context::Ontology;
use wrangler_match::{
    match_schemas_with_profiles, profile_table, select_one_to_one, InstanceProfile, MatchConfig,
};
use wrangler_table::{Schema, Table};
use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};

use crate::mapping::Mapping;

/// Generate a mapping from `source` into `target`, matching against a
/// `target_sample` table that carries target-schema instances (master data or
/// previously wrangled data; instances make matching far stronger than names
/// alone — §2.3).
pub fn generate_mapping(
    source: &Table,
    target: &Schema,
    target_sample: &Table,
    ontology: Option<&Ontology>,
    cfg: &MatchConfig,
) -> Mapping {
    generate_mapping_with_profiles(
        source,
        target,
        target_sample,
        &profile_table(target_sample),
        ontology,
        cfg,
    )
}

/// [`generate_mapping`] with the target sample's column profiles precomputed
/// (see [`wrangler_match::profile_table`]). Profiling is a pure function of
/// the sample, so callers aligning many sources against one target can hoist
/// it out of the loop with byte-identical results.
pub fn generate_mapping_with_profiles(
    source: &Table,
    target: &Schema,
    target_sample: &Table,
    target_profiles: &[InstanceProfile],
    ontology: Option<&Ontology>,
    cfg: &MatchConfig,
) -> Mapping {
    debug_assert_eq!(
        target_sample.schema().names(),
        target.names(),
        "sample must carry the target schema"
    );
    let corrs = select_one_to_one(&match_schemas_with_profiles(
        target_sample,
        target_profiles,
        source,
        ontology,
        cfg,
    ));
    // Hint untyped target fields (all-null sample columns) with the dtype the
    // ontology expects, so mapping execution can normalize values into them.
    let target: Schema = {
        let mut fields = target.fields().to_vec();
        if let Some(ont) = ontology {
            for f in &mut fields {
                if f.dtype == wrangler_table::DataType::Null {
                    if let Some(dt) = ont.expected_dtype(&f.name) {
                        f.dtype = dt;
                    }
                }
            }
        }
        Schema::new(fields).expect("names unchanged") // lint-allow: names copied from a schema that enforced uniqueness
    };
    let mut bindings = vec![None; target.len()];
    let mut binding_beliefs = vec![Belief::uninformed(); target.len()];
    for c in &corrs {
        bindings[c.left] = Some(c.right);
        binding_beliefs[c.left] = c.belief.clone();
    }
    // Mapping-level belief: pool the binding beliefs as component evidence.
    let mut belief = Belief::from_prior(0.5);
    for (b, bel) in bindings.iter().zip(&binding_beliefs) {
        if b.is_some() {
            belief.update(&Evidence::from_score(
                EvidenceKind::Component,
                bel.probability(),
            ));
        }
    }
    Mapping {
        target,
        bindings,
        binding_beliefs,
        belief,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::{DataType, Value};

    fn target_sample() -> Table {
        Table::literal(
            &["sku", "name", "price"],
            vec![
                vec!["a1".into(), "Acme Widget".into(), Value::Float(9.9)],
                vec!["a2".into(), "Bolt Gadget".into(), Value::Float(19.0)],
                vec!["a3".into(), "Acme Flange".into(), Value::Float(5.5)],
                vec!["a4".into(), "Stark Dynamo".into(), Value::Float(7.25)],
            ],
        )
        .unwrap()
    }

    fn drifted_source() -> Table {
        Table::literal(
            &["title", "cost", "code", "junk"],
            vec![
                vec![
                    "Acme Widget".into(),
                    Value::Float(9.9),
                    "a1".into(),
                    "x".into(),
                ],
                vec![
                    "Stark Dynamo".into(),
                    Value::Float(7.0),
                    "a4".into(),
                    "y".into(),
                ],
                vec![
                    "Bolt Gadget".into(),
                    Value::Float(18.5),
                    "a2".into(),
                    "z".into(),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn generates_working_mapping_across_drifted_schema() {
        let sample = target_sample();
        let ont = Ontology::ecommerce();
        let m = generate_mapping(
            &drifted_source(),
            sample.schema(),
            &sample,
            Some(&ont),
            &MatchConfig::default(),
        );
        assert_eq!(m.bindings.len(), 3);
        // sku ← code, name ← title, price ← cost.
        assert_eq!(m.bindings[0], Some(2));
        assert_eq!(m.bindings[1], Some(0));
        assert_eq!(m.bindings[2], Some(1));
        let out = m.apply(&drifted_source()).unwrap();
        assert_eq!(out.schema().names(), vec!["sku", "name", "price"]);
        assert_eq!(out.get_named(0, "sku").unwrap().as_str(), Some("a1"));
        assert_eq!(out.get_named(1, "price").unwrap(), &Value::Float(7.0));
        // The junk column is not bound anywhere.
        assert!(m.coverage() > 0.99);
    }

    #[test]
    fn unmatched_target_fields_stay_unbound() {
        let sample = target_sample();
        let mut fields = sample.schema().fields().to_vec();
        fields.push(wrangler_table::Field::new("warranty", DataType::Str));
        let wider = Schema::new(fields).unwrap();
        // Build a sample with the wider schema (warranty all null).
        let mut sample_wide = Table::empty(wider.clone());
        for r in sample.iter_rows() {
            let mut row = r;
            row.push(Value::Null);
            sample_wide.push_row(row).unwrap();
        }
        let m = generate_mapping(
            &drifted_source(),
            &wider,
            &sample_wide,
            None,
            &MatchConfig::default(),
        );
        assert_eq!(m.bindings[3], None, "warranty has no counterpart");
        let out = m.apply(&drifted_source()).unwrap();
        assert!(out.get_named(0, "warranty").unwrap().is_null());
    }

    #[test]
    fn belief_reflects_binding_strength() {
        let sample = target_sample();
        let ont = Ontology::ecommerce();
        let good = generate_mapping(
            &drifted_source(),
            sample.schema(),
            &sample,
            Some(&ont),
            &MatchConfig::default(),
        );
        // A source with nothing in common produces a far weaker mapping.
        let alien = Table::literal(
            &["a", "b"],
            vec![vec![Value::Bool(true), Value::Bool(false)]],
        )
        .unwrap();
        let bad = generate_mapping(
            &alien,
            sample.schema(),
            &sample,
            Some(&ont),
            &MatchConfig::default(),
        );
        assert!(good.belief.probability() > bad.belief.probability());
        assert!(good.coverage() > bad.coverage());
    }
}
