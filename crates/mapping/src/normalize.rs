//! Value normalization applied during mapping execution.
//!
//! Sources render the same value many ways (`$9.99`, `9,99 €`, `1,299.00`);
//! normalization recovers the typed value where a plain cast fails. This is
//! deliberately conservative: anything it cannot confidently interpret is
//! left as the original string rather than guessed (veracity: do not destroy
//! evidence).

use wrangler_table::{DataType, Value};

/// Try to interpret a string as a number, tolerating currency symbols,
/// thousands separators, decimal commas and percent signs.
pub fn parse_messy_number(raw: &str) -> Option<f64> {
    let mut s: String = raw
        .trim()
        .trim_start_matches(['$', '€', '£', '¥'])
        .trim_end_matches(['$', '€', '£', '¥'])
        .trim()
        .to_string();
    // Currency codes around the number.
    for code in ["USD", "EUR", "GBP", "usd", "eur", "gbp"] {
        s = s
            .trim_start_matches(code)
            .trim_end_matches(code)
            .trim()
            .to_string();
    }
    let percent = s.ends_with('%');
    if percent {
        s.pop();
    }
    // Decide comma semantics: "1,299.00" (thousands) vs "9,99" (decimal).
    if s.contains(',') && s.contains('.') {
        s = s.replace(',', "");
    } else if let Some(pos) = s.rfind(',') {
        let frac = s.len() - pos - 1;
        if frac == 3 && s.matches(',').count() >= 1 && !s[..pos].is_empty() && s.len() > 4 {
            // 1,299 style: ambiguous; treat as thousands only when groups of 3.
            s = s.replace(',', "");
        } else {
            s = s.replace(',', ".");
        }
    }
    let v: f64 = s.trim().parse().ok()?;
    Some(if percent { v / 100.0 } else { v })
}

/// Coerce a value to the target type, trying messy-number recovery for
/// numeric targets. Returns the original value when interpretation fails.
pub fn normalize_to(v: &Value, target: DataType) -> Value {
    if v.is_null() || v.dtype() == target {
        return v.clone();
    }
    if let Ok(coerced) = v.coerce(target) {
        return coerced;
    }
    if target.is_numeric() {
        if let Some(s) = v.as_str() {
            if let Some(n) = parse_messy_number(s) {
                return match target {
                    DataType::Int if n.fract() == 0.0 => Value::Int(n as i64),
                    _ => Value::Float(n),
                };
            }
        }
    }
    v.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn currency_symbols_and_codes() {
        assert_eq!(parse_messy_number("$9.99"), Some(9.99));
        assert_eq!(parse_messy_number("9.99 €"), Some(9.99));
        assert_eq!(parse_messy_number("GBP 12.50"), Some(12.5));
        assert_eq!(parse_messy_number(" 42 "), Some(42.0));
    }

    #[test]
    fn separators() {
        assert_eq!(parse_messy_number("1,299.00"), Some(1299.0));
        assert_eq!(parse_messy_number("9,99"), Some(9.99));
        assert_eq!(parse_messy_number("1,299"), Some(1299.0));
    }

    #[test]
    fn percent() {
        assert_eq!(parse_messy_number("15%"), Some(0.15));
    }

    #[test]
    fn garbage_is_none() {
        assert_eq!(parse_messy_number("call us"), None);
        assert_eq!(parse_messy_number(""), None);
        assert_eq!(parse_messy_number("$"), None);
    }

    #[test]
    fn normalize_to_recovers_messy_prices() {
        assert_eq!(
            normalize_to(&"$9.99".into(), DataType::Float),
            Value::Float(9.99)
        );
        assert_eq!(normalize_to(&"7".into(), DataType::Int), Value::Int(7));
        assert_eq!(
            normalize_to(&Value::Int(3), DataType::Float),
            Value::Float(3.0)
        );
        // Unrecoverable: original preserved.
        assert_eq!(
            normalize_to(&"ring for price".into(), DataType::Float),
            Value::Str("ring for price".into())
        );
        assert_eq!(normalize_to(&Value::Null, DataType::Float), Value::Null);
    }
}
