//! The mapping artifact and its executor.

use wrangler_context::{Criterion, QualityVector};
use wrangler_table::{Field, Schema, Table, Value};
use wrangler_uncertainty::Belief;

/// A mapping from one source table into the target schema.
///
/// Per target field it records which source column feeds it (if any); the
/// executor projects, renames, casts/normalizes and tags provenance. The
/// mapping carries a belief in its own correctness, updated by match evidence
/// at generation time and by feedback afterwards.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// The target schema this mapping produces.
    pub target: Schema,
    /// For each target field: the source column index feeding it.
    pub bindings: Vec<Option<usize>>,
    /// Per-binding belief that the correspondence is correct (aligned with
    /// `bindings`; `Belief::uninformed()` for unbound fields).
    pub binding_beliefs: Vec<Belief>,
    /// Belief in the mapping as a whole (pooled bindings + feedback).
    pub belief: Belief,
}

impl Mapping {
    /// Fraction of target fields that are bound.
    pub fn coverage(&self) -> f64 {
        if self.bindings.is_empty() {
            return 0.0;
        }
        self.bindings.iter().filter(|b| b.is_some()).count() as f64 / self.bindings.len() as f64
    }

    /// Mean probability of the bound correspondences (1.0 if none bound —
    /// an empty mapping is vacuously precise, just useless).
    pub fn mean_binding_probability(&self) -> f64 {
        let bound: Vec<f64> = self
            .bindings
            .iter()
            .zip(&self.binding_beliefs)
            .filter(|(b, _)| b.is_some())
            .map(|(_, bel)| bel.probability())
            .collect();
        if bound.is_empty() {
            1.0
        } else {
            bound.iter().sum::<f64>() / bound.len() as f64
        }
    }

    /// Execute the mapping: reshape `source` into the target schema. Unbound
    /// fields become all-null columns; bound values are normalized to the
    /// target field dtype (see [`crate::normalize`]).
    pub fn apply(&self, source: &Table) -> wrangler_table::Result<Table> {
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(self.target.len());
        for (field, binding) in self.target.fields().iter().zip(&self.bindings) {
            let col = match binding {
                Some(src) => source
                    .column(*src)?
                    .iter()
                    .map(|v| crate::normalize::normalize_to(v, field.dtype))
                    .collect(),
                None => vec![Value::Null; source.num_rows()],
            };
            columns.push(col);
        }
        let mut t = Table::from_columns(self.target.clone(), columns)?;
        t.reinfer_types();
        Ok(t)
    }

    /// Static quality estimate of this mapping (before execution):
    /// completeness from binding coverage, accuracy/consistency from binding
    /// beliefs. Timeliness/relevance/cost are source properties the caller
    /// blends in afterwards.
    pub fn quality_estimate(&self) -> QualityVector {
        QualityVector::neutral()
            .with(Criterion::Completeness, self.coverage())
            .with(Criterion::Accuracy, self.mean_binding_probability())
            .with(Criterion::Consistency, self.belief.probability())
    }
}

/// Build the canonical target schema from field names + dtypes.
pub fn target_schema(fields: &[(&str, wrangler_table::DataType)]) -> Schema {
    Schema::new(fields.iter().map(|(n, d)| Field::new(*n, *d)).collect())
        .expect("caller supplies unique names") // lint-allow: documented contract of this helper
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::DataType;

    fn target() -> Schema {
        target_schema(&[
            ("sku", DataType::Str),
            ("price", DataType::Float),
            ("brand", DataType::Str),
        ])
    }

    fn source() -> Table {
        Table::literal(
            &["code", "cost"],
            vec![
                vec!["a1".into(), "$9.99".into()],
                vec!["a2".into(), Value::Float(19.5)],
                vec!["a3".into(), "call us".into()],
            ],
        )
        .unwrap()
    }

    fn mapping() -> Mapping {
        Mapping {
            target: target(),
            bindings: vec![Some(0), Some(1), None],
            binding_beliefs: vec![
                Belief::from_prior(0.9),
                Belief::from_prior(0.8),
                Belief::uninformed(),
            ],
            belief: Belief::from_prior(0.85),
        }
    }

    #[test]
    fn apply_reshapes_and_normalizes() {
        let out = mapping().apply(&source()).unwrap();
        assert_eq!(out.schema().names(), vec!["sku", "price", "brand"]);
        assert_eq!(out.get_named(0, "price").unwrap(), &Value::Float(9.99));
        assert_eq!(out.get_named(1, "price").unwrap(), &Value::Float(19.5));
        // Unrecoverable value preserved as evidence.
        assert_eq!(out.get_named(2, "price").unwrap().as_str(), Some("call us"));
        assert!(out.get_named(0, "brand").unwrap().is_null());
    }

    #[test]
    fn coverage_and_precision_estimates() {
        let m = mapping();
        assert!((m.coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_binding_probability() - 0.85).abs() < 1e-9);
        let q = m.quality_estimate();
        assert!((q.get(Criterion::Completeness) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_source_maps_to_empty_target() {
        let empty = Table::empty(Schema::of_strs(&["code", "cost"]));
        let out = mapping().apply(&empty).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().names(), vec!["sku", "price", "brand"]);
    }
}
