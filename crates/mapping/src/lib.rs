//! `wrangler-mapping` — schema mappings: generation, execution, estimation
//! and pay-as-you-go refinement.
//!
//! §4.1: "the selection of which mappings to use must take into account
//! information from the user context, such as the number of results required,
//! the budget for accessing sources, and quality requirements." And from the
//! dataspaces line of work (\[5\]): mappings are *refined* by feedback rather
//! than authored once.
//!
//! * [`mapping`] — a [`Mapping`] reshapes one source table into the target
//!   schema (projection + rename + cast + value normalization), carrying a
//!   [`wrangler_uncertainty::Belief`] in its own correctness;
//! * [`normalize`] — value cleaning applied during mapping execution
//!   (currency symbols, thousands separators, percent signs);
//! * [`gen`] — generate mappings from schema-match correspondences;
//! * [`refine`] — integrate tuple-level feedback into mapping beliefs and
//!   re-select which mappings stay active (\[5\]'s precision/recall-driven
//!   mapping selection, recast in the uniform evidence model).

pub mod gen;
pub mod mapping;
pub mod normalize;
pub mod refine;

pub use gen::{generate_mapping, generate_mapping_with_profiles};
pub use mapping::Mapping;
