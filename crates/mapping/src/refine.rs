//! Pay-as-you-go mapping refinement (\[5\]).
//!
//! Feedback on wrangled tuples ("this row is right/wrong") propagates to the
//! mapping that produced the row; mappings whose belief decays below the user
//! context's confidence bar are deactivated, and the result recomposed — the
//! incremental improvement loop of the dataspaces vision, with feedback as a
//! first-class evidence kind.

use wrangler_context::UserContext;
use wrangler_uncertainty::{Evidence, EvidenceKind};

use crate::mapping::Mapping;

/// Integrate one piece of tuple-level feedback into the mapping that
/// produced the tuple. `reliability` discounts crowd feedback (\[13\]);
/// direct user feedback passes 1.0.
pub fn record_feedback(mapping: &mut Mapping, positive: bool, reliability: f64) {
    let kind = if reliability >= 1.0 {
        EvidenceKind::UserFeedback
    } else {
        EvidenceKind::CrowdFeedback
    };
    mapping
        .belief
        .update(&Evidence::vote(kind, positive, 0.9).discounted(reliability));
}

/// Feedback about a specific target field's values ("the prices are wrong")
/// reaches the responsible binding as well as the mapping.
pub fn record_field_feedback(
    mapping: &mut Mapping,
    target_field: &str,
    positive: bool,
    reliability: f64,
) -> bool {
    let Ok(idx) = mapping.target.index_of(target_field) else {
        return false;
    };
    mapping.binding_beliefs[idx]
        .update(&Evidence::vote(EvidenceKind::UserFeedback, positive, 0.9).discounted(reliability));
    record_feedback(mapping, positive, reliability);
    // Unbind a field whose binding belief collapses: better a null column
    // than confidently wrong data under an accuracy-first context.
    if mapping.binding_beliefs[idx].probability() < 0.15 {
        mapping.bindings[idx] = None;
        return true;
    }
    false
}

/// Which mappings stay active under the user context: belief must clear the
/// context's minimum confidence.
pub fn active_mappings<'a>(
    mappings: &'a [Mapping],
    user: &UserContext,
) -> Vec<(usize, &'a Mapping)> {
    mappings
        .iter()
        .enumerate()
        .filter(|(_, m)| m.belief.probability() >= user.min_confidence && m.coverage() > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::DataType;
    use wrangler_uncertainty::Belief;

    fn mapping() -> Mapping {
        let target =
            crate::mapping::target_schema(&[("sku", DataType::Str), ("price", DataType::Float)]);
        Mapping {
            target,
            bindings: vec![Some(0), Some(1)],
            binding_beliefs: vec![Belief::from_prior(0.7), Belief::from_prior(0.7)],
            belief: Belief::from_prior(0.7),
        }
    }

    #[test]
    fn positive_feedback_raises_negative_lowers() {
        let mut up = mapping();
        record_feedback(&mut up, true, 1.0);
        assert!(up.belief.probability() > 0.7);
        let mut down = mapping();
        record_feedback(&mut down, false, 1.0);
        assert!(down.belief.probability() < 0.7);
    }

    #[test]
    fn crowd_feedback_is_discounted() {
        let mut direct = mapping();
        record_feedback(&mut direct, false, 1.0);
        let mut crowd = mapping();
        record_feedback(&mut crowd, false, 0.6);
        assert!(crowd.belief.probability() > direct.belief.probability());
        assert!(crowd.belief.evidence_count(EvidenceKind::CrowdFeedback) == 1);
        assert!(direct.belief.evidence_count(EvidenceKind::UserFeedback) == 1);
    }

    #[test]
    fn repeated_negative_field_feedback_unbinds() {
        let mut m = mapping();
        let mut unbound = false;
        for _ in 0..10 {
            unbound = record_field_feedback(&mut m, "price", false, 1.0);
            if unbound {
                break;
            }
        }
        assert!(unbound);
        assert_eq!(m.bindings[1], None);
        assert_eq!(m.bindings[0], Some(0), "other bindings untouched");
        assert!(!record_field_feedback(&mut m, "ghost", false, 1.0));
    }

    #[test]
    fn active_set_respects_context_confidence() {
        let mut strict = UserContext::balanced("strict");
        strict.min_confidence = 0.8;
        let mut lax = UserContext::balanced("lax");
        lax.min_confidence = 0.3;
        let mut weak = mapping();
        record_feedback(&mut weak, false, 0.5); // one crowd downvote → p ≈ 0.5
        let strong = mapping();
        let mappings = vec![strong, weak];
        let strict_active = active_mappings(&mappings, &strict);
        let lax_active = active_mappings(&mappings, &lax);
        assert_eq!(strict_active.len(), 0); // even the strong one is only 0.7
        assert_eq!(lax_active.len(), 2);
        let mut mid = UserContext::balanced("mid");
        mid.min_confidence = 0.6;
        assert_eq!(active_mappings(&mappings, &mid).len(), 1);
    }
}
