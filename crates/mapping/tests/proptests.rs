//! Property tests for mappings: execution shape, normalization laws,
//! feedback monotonicity.

use proptest::prelude::*;
use wrangler_mapping::mapping::target_schema;
use wrangler_mapping::normalize::{normalize_to, parse_messy_number};
use wrangler_mapping::refine::record_feedback;
use wrangler_mapping::Mapping;
use wrangler_table::{DataType, Table, Value};
use wrangler_uncertainty::Belief;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-10_000i64..10_000).prop_map(Value::Int),
        (-1e4f64..1e4).prop_map(Value::Float),
        "[ -~]{0,10}".prop_map(Value::Str),
    ]
}

proptest! {
    #[test]
    fn parse_messy_number_agrees_with_plain_parse(x in -1e6f64..1e6) {
        let s = format!("{x}");
        let parsed = parse_messy_number(&s).expect("plain floats parse");
        prop_assert!((parsed - x).abs() < 1e-9_f64.max(x.abs() * 1e-12));
        // Currency decoration does not change the value.
        let decorated = format!("${x}");
        prop_assert_eq!(parse_messy_number(&decorated), Some(parsed));
    }

    #[test]
    fn normalize_never_invents_nulls(v in arb_value()) {
        for dt in [DataType::Int, DataType::Float, DataType::Str, DataType::Bool] {
            let out = normalize_to(&v, dt);
            prop_assert_eq!(out.is_null(), v.is_null(), "{:?} -> {:?}", v, dt);
        }
    }

    #[test]
    fn normalize_to_str_renders_identically(v in arb_value()) {
        let out = normalize_to(&v, DataType::Str);
        if !v.is_null() {
            prop_assert_eq!(out.render(), v.render());
        }
    }

    #[test]
    fn mapping_apply_preserves_row_count_and_schema(
        rows in prop::collection::vec((arb_value(), arb_value()), 0..15),
    ) {
        let source = Table::literal(
            &["c0", "c1"],
            rows.into_iter().map(|(a, b)| vec![a, b]).collect(),
        )
        .unwrap();
        let m = Mapping {
            target: target_schema(&[("x", DataType::Str), ("y", DataType::Float), ("z", DataType::Int)]),
            bindings: vec![Some(0), Some(1), None],
            binding_beliefs: vec![Belief::uninformed(); 3],
            belief: Belief::uninformed(),
        };
        let out = m.apply(&source).unwrap();
        prop_assert_eq!(out.num_rows(), source.num_rows());
        prop_assert_eq!(out.schema().names(), vec!["x", "y", "z"]);
        // Unbound column is all null.
        for i in 0..out.num_rows() {
            prop_assert!(out.get_named(i, "z").unwrap().is_null());
        }
    }

    #[test]
    fn feedback_moves_belief_monotonically(
        verdicts in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut m = Mapping {
            target: target_schema(&[("x", DataType::Str)]),
            bindings: vec![Some(0)],
            binding_beliefs: vec![Belief::uninformed()],
            belief: Belief::from_prior(0.5),
        };
        for &positive in &verdicts {
            let before = m.belief.probability();
            record_feedback(&mut m, positive, 1.0);
            let after = m.belief.probability();
            if positive {
                prop_assert!(after > before - 1e-12);
            } else {
                prop_assert!(after < before + 1e-12);
            }
        }
    }

    #[test]
    fn coverage_counts_bindings(bound in prop::collection::vec(any::<bool>(), 1..8)) {
        let fields: Vec<(String, DataType)> =
            (0..bound.len()).map(|i| (format!("f{i}"), DataType::Str)).collect();
        let refs: Vec<(&str, DataType)> =
            fields.iter().map(|(n, d)| (n.as_str(), *d)).collect();
        let m = Mapping {
            target: target_schema(&refs),
            bindings: bound.iter().map(|&b| if b { Some(0) } else { None }).collect(),
            binding_beliefs: vec![Belief::uninformed(); bound.len()],
            belief: Belief::uninformed(),
        };
        let want = bound.iter().filter(|&&b| b).count() as f64 / bound.len() as f64;
        prop_assert!((m.coverage() - want).abs() < 1e-12);
    }
}
