//! Property tests for the context crate: AHP laws, utility bounds, Pareto
//! front correctness.

use proptest::prelude::*;
use wrangler_context::criteria::{pareto_front, ALL_CRITERIA};
use wrangler_context::{AhpMatrix, QualityVector, UserContext};

fn arb_quality() -> impl Strategy<Value = QualityVector> {
    prop::collection::vec(0.0f64..=1.0, 6).prop_map(|xs| {
        let mut q = QualityVector::neutral();
        for (c, x) in ALL_CRITERIA.iter().zip(xs) {
            q = q.with(*c, x);
        }
        q
    })
}

proptest! {
    #[test]
    fn ahp_weights_normalized_and_positive(
        judgements in prop::collection::vec((0usize..6, 0usize..6, 0.2f64..8.0), 0..12),
    ) {
        let mut m = AhpMatrix::for_criteria();
        for (i, j, r) in judgements {
            if i != j {
                m.judge(i, j, r);
            }
        }
        let w = m.weights();
        let sum: f64 = w.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        prop_assert!(w.weights.iter().all(|&x| x > 0.0));
        prop_assert!(w.lambda_max >= 6.0 - 1e-6, "λmax={} < n", w.lambda_max);
        prop_assert!(w.consistency_ratio >= -1e-9);
    }

    #[test]
    fn consistent_matrices_recover_weight_ratios(raw in prop::collection::vec(0.1f64..1.0, 6)) {
        let total: f64 = raw.iter().sum();
        let target: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let mut m = AhpMatrix::for_criteria();
        for i in 0..6 {
            for j in (i + 1)..6 {
                m.judge(i, j, target[i] / target[j]);
            }
        }
        let w = m.weights();
        // Clamping to Saaty's [1/9, 9] can distort extreme ratios; only exact
        // when all pairwise ratios are within bounds.
        let in_bounds = (0..6).all(|i| {
            (0..6).all(|j| {
                let r = target[i] / target[j];
                (1.0 / 9.0..=9.0).contains(&r)
            })
        });
        if in_bounds {
            for (got, want) in w.weights.iter().zip(&target) {
                prop_assert!((got - want).abs() < 1e-4, "{got} vs {want}");
            }
            prop_assert!(w.consistency_ratio < 1e-6);
        }
    }

    #[test]
    fn utility_is_bounded_and_monotone(q in arb_quality()) {
        for ctx in [UserContext::balanced("b"), UserContext::accuracy_first(), UserContext::completeness_first()] {
            let u = ctx.utility(&q);
            prop_assert!((0.0..=1.0).contains(&u));
            // Improving any criterion never lowers utility.
            for c in ALL_CRITERIA {
                let better = q.with(c, (q.get(c) + 0.2).min(1.0));
                prop_assert!(ctx.utility(&better) + 1e-12 >= u);
            }
        }
    }

    #[test]
    fn pareto_front_members_are_mutually_nondominated(items in prop::collection::vec(arb_quality(), 1..20)) {
        let front = pareto_front(&items);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for (j, q) in items.iter().enumerate() {
                if j != i {
                    prop_assert!(!q.dominates(&items[i]), "front member {i} dominated by {j}");
                }
            }
        }
        // Everything off the front is dominated by something.
        for (i, q) in items.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(items.iter().any(|p| p.dominates(q)));
            }
        }
    }

    #[test]
    fn rank_orders_by_utility(items in prop::collection::vec(arb_quality(), 1..15)) {
        let ctx = UserContext::accuracy_first();
        let ranked = ctx.rank(&items);
        prop_assert_eq!(ranked.len(), items.len());
        for w in ranked.windows(2) {
            prop_assert!(ctx.utility(&items[w[0]]) + 1e-12 >= ctx.utility(&items[w[1]]));
        }
    }
}
