//! Quality criteria and quality vectors.
//!
//! Example 2 of the paper contrasts a routine price-comparison context that
//! "may prefer features such as accuracy and timeliness to completeness" with
//! an issue-investigation context that "may require a more complete picture
//! ... at the risk of presenting the user with more incorrect or out-of-date
//! data". [`Criterion`] enumerates those dimensions; [`QualityVector`] scores
//! an artifact (source, mapping, result set) on each.

use std::fmt;

/// A non-functional quality dimension of wrangled data.
///
/// `Cost` is oriented like the others: **1.0 means free, 0.0 means at
/// budget-limit expensive**, so utility is always "higher is better".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Criterion {
    /// Fraction of the wanted data that is present (coverage, non-nullness).
    Completeness,
    /// Fraction of delivered values that are correct.
    Accuracy,
    /// How fresh the data is relative to the user's horizon.
    Timeliness,
    /// Freedom from internal contradictions (constraint violations).
    Consistency,
    /// Topical fit to the user's task (data-context relevance).
    Relevance,
    /// Inverted resource cost (monetary, latency, effort).
    Cost,
}

/// All criteria, in canonical order.
pub const ALL_CRITERIA: [Criterion; 6] = [
    Criterion::Completeness,
    Criterion::Accuracy,
    Criterion::Timeliness,
    Criterion::Consistency,
    Criterion::Relevance,
    Criterion::Cost,
];

impl Criterion {
    /// Position in [`ALL_CRITERIA`].
    pub fn index(self) -> usize {
        ALL_CRITERIA
            .iter()
            .position(|c| *c == self)
            .expect("criterion is in ALL_CRITERIA") // lint-allow: ALL_CRITERIA lists every variant
    }

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Criterion::Completeness => "completeness",
            Criterion::Accuracy => "accuracy",
            Criterion::Timeliness => "timeliness",
            Criterion::Consistency => "consistency",
            Criterion::Relevance => "relevance",
            Criterion::Cost => "cost",
        }
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A score in \[0, 1\] per criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityVector {
    scores: [f64; 6],
}

impl QualityVector {
    /// All criteria at the given score.
    pub fn uniform(score: f64) -> Self {
        QualityVector {
            scores: [score.clamp(0.0, 1.0); 6],
        }
    }

    /// Neutral vector (0.5 everywhere).
    pub fn neutral() -> Self {
        QualityVector::uniform(0.5)
    }

    /// Get the score for one criterion.
    pub fn get(&self, c: Criterion) -> f64 {
        self.scores[c.index()]
    }

    /// Set the score for one criterion (clamped to \[0, 1\]); builder style.
    pub fn with(mut self, c: Criterion, score: f64) -> Self {
        self.scores[c.index()] = score.clamp(0.0, 1.0);
        self
    }

    /// Weighted utility under a weight vector aligned with [`ALL_CRITERIA`].
    /// Weights need not be normalized; utility is the weighted mean.
    pub fn utility(&self, weights: &[f64; 6]) -> f64 {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.scores
            .iter()
            .zip(weights)
            .map(|(s, w)| s * w)
            .sum::<f64>()
            / total
    }

    /// Pointwise minimum with another vector (pessimistic merge).
    pub fn min(&self, other: &QualityVector) -> QualityVector {
        let mut scores = [0.0; 6];
        for (i, s) in scores.iter_mut().enumerate() {
            *s = self.scores[i].min(other.scores[i]);
        }
        QualityVector { scores }
    }

    /// Weighted average of two vectors (`w` towards `other`).
    pub fn blend(&self, other: &QualityVector, w: f64) -> QualityVector {
        let w = w.clamp(0.0, 1.0);
        let mut scores = [0.0; 6];
        for (i, s) in scores.iter_mut().enumerate() {
            *s = self.scores[i] * (1.0 - w) + other.scores[i] * w;
        }
        QualityVector { scores }
    }

    /// True if `self` dominates `other` (≥ on every criterion, > on one):
    /// the Pareto relation used when enumerating trade-offs.
    pub fn dominates(&self, other: &QualityVector) -> bool {
        let mut strictly = false;
        for i in 0..6 {
            if self.scores[i] < other.scores[i] {
                return false;
            }
            if self.scores[i] > other.scores[i] {
                strictly = true;
            }
        }
        strictly
    }
}

impl Default for QualityVector {
    fn default() -> Self {
        QualityVector::neutral()
    }
}

impl fmt::Display for QualityVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in ALL_CRITERIA.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={:.2}", c.name(), self.scores[i])?;
        }
        Ok(())
    }
}

/// Keep only the Pareto-optimal vectors (indices into `items`).
pub fn pareto_front(items: &[QualityVector]) -> Vec<usize> {
    (0..items.len())
        .filter(|&i| {
            !items
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && q.dominates(&items[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_clamp() {
        let q = QualityVector::neutral().with(Criterion::Accuracy, 1.5);
        assert_eq!(q.get(Criterion::Accuracy), 1.0);
        assert_eq!(q.get(Criterion::Cost), 0.5);
    }

    #[test]
    fn utility_is_weighted_mean() {
        let q = QualityVector::uniform(0.0).with(Criterion::Accuracy, 1.0);
        let mut w = [0.0; 6];
        w[Criterion::Accuracy.index()] = 2.0;
        w[Criterion::Cost.index()] = 2.0;
        assert!((q.utility(&w) - 0.5).abs() < 1e-12);
        assert_eq!(q.utility(&[0.0; 6]), 0.0);
    }

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        let a = QualityVector::uniform(0.8);
        let b = QualityVector::uniform(0.8).with(Criterion::Timeliness, 0.5);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn pareto_front_filters_dominated() {
        let items = vec![
            QualityVector::uniform(0.9),                            // dominates 2
            QualityVector::uniform(0.2).with(Criterion::Cost, 1.0), // trade-off, kept
            QualityVector::uniform(0.5).with(Criterion::Cost, 0.5), // dominated by 0
        ];
        let front = pareto_front(&items);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn blend_and_min() {
        let a = QualityVector::uniform(1.0);
        let b = QualityVector::uniform(0.0);
        assert_eq!(a.blend(&b, 0.25).get(Criterion::Accuracy), 0.75);
        assert_eq!(a.min(&b), b);
    }

    #[test]
    fn criterion_indices_are_consistent() {
        for (i, c) in ALL_CRITERIA.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
