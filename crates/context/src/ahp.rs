//! The Analytic Hierarchy Process (Saaty, ref \[31\] in the paper).
//!
//! "In the widely used Analytic Hierarchy Process, users compare criteria
//! (such as timeliness or completeness) in terms of their relative
//! importance, which can be taken into account when making decisions (such as
//! which mappings to use in data integration)." (§2.1)
//!
//! A user states pairwise judgements `a_ij` ("criterion i is `a_ij` times as
//! important as j", on Saaty's 1–9 scale); the principal eigenvector of the
//! reciprocal matrix yields the weights, and the consistency ratio flags
//! contradictory judgement sets.

use crate::criteria::ALL_CRITERIA;

/// Saaty's random consistency indices for n = 1..=10 (index 0 unused).
const RANDOM_INDEX: [f64; 11] = [
    0.0, 0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49,
];

/// A reciprocal pairwise-comparison matrix.
#[derive(Debug, Clone)]
pub struct AhpMatrix {
    n: usize,
    a: Vec<f64>, // row-major n×n
}

/// Result of an AHP weight derivation.
#[derive(Debug, Clone)]
pub struct AhpWeights {
    /// Normalized weights (sum to 1), one per compared item.
    pub weights: Vec<f64>,
    /// Principal eigenvalue estimate λ_max.
    pub lambda_max: f64,
    /// Consistency index (λ_max − n)/(n − 1).
    pub consistency_index: f64,
    /// Consistency ratio CI / RI; ≤ 0.1 is conventionally acceptable.
    pub consistency_ratio: f64,
}

impl AhpWeights {
    /// Saaty's conventional acceptability test.
    pub fn is_consistent(&self) -> bool {
        self.consistency_ratio <= 0.1
    }
}

impl AhpMatrix {
    /// Identity judgements (everything equally important).
    pub fn identity(n: usize) -> Self {
        assert!((1..=10).contains(&n), "AHP supports 1..=10 items");
        let mut a = vec![1.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        AhpMatrix { n, a }
    }

    /// Matrix over the six wrangling criteria.
    pub fn for_criteria() -> Self {
        AhpMatrix::identity(ALL_CRITERIA.len())
    }

    /// Number of compared items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix compares zero items (never: constructor requires ≥1).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// State that item `i` is `ratio` times as important as item `j`
    /// (`ratio` clamped to Saaty's [1/9, 9]); the reciprocal cell is set
    /// automatically.
    pub fn judge(&mut self, i: usize, j: usize, ratio: f64) {
        assert!(i < self.n && j < self.n, "indices in range");
        if i == j {
            return;
        }
        let r = ratio.clamp(1.0 / 9.0, 9.0);
        self.a[i * self.n + j] = r;
        self.a[j * self.n + i] = 1.0 / r;
    }

    /// Builder form of [`judge`](Self::judge).
    pub fn with_judgement(mut self, i: usize, j: usize, ratio: f64) -> Self {
        self.judge(i, j, ratio);
        self
    }

    /// Cell (i, j).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Derive weights by power iteration on the reciprocal matrix, with
    /// λ_max estimated from the Rayleigh-style consistency vector.
    pub fn weights(&self) -> AhpWeights {
        let n = self.n;
        // Power iteration from the uniform vector; reciprocal matrices are
        // primitive so this converges to the principal eigenvector.
        let mut w = vec![1.0 / n as f64; n];
        for _ in 0..100 {
            let mut next = vec![0.0; n];
            for (i, nx) in next.iter_mut().enumerate() {
                for (j, wj) in w.iter().enumerate() {
                    *nx += self.a[i * n + j] * wj;
                }
            }
            let sum: f64 = next.iter().sum();
            for x in &mut next {
                *x /= sum;
            }
            let delta: f64 = next.iter().zip(&w).map(|(a, b)| (a - b).abs()).sum();
            w = next;
            if delta < 1e-12 {
                break;
            }
        }
        // λ_max = mean over i of (A·w)_i / w_i.
        let mut lambda = 0.0;
        for i in 0..n {
            let mut aw = 0.0;
            for (j, wj) in w.iter().enumerate() {
                aw += self.a[i * n + j] * wj;
            }
            lambda += aw / w[i];
        }
        lambda /= n as f64;
        let ci = if n <= 2 {
            0.0
        } else {
            (lambda - n as f64) / (n as f64 - 1.0)
        };
        let ri = RANDOM_INDEX[n];
        let cr = if ri == 0.0 { 0.0 } else { ci / ri };
        AhpWeights {
            weights: w,
            lambda_max: lambda,
            consistency_index: ci,
            consistency_ratio: cr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_gives_uniform_weights() {
        let w = AhpMatrix::identity(4).weights();
        for x in &w.weights {
            assert!((x - 0.25).abs() < 1e-9);
        }
        assert!((w.lambda_max - 4.0).abs() < 1e-9);
        assert!(w.is_consistent());
    }

    #[test]
    fn perfectly_consistent_matrix_recovers_ratios() {
        // weights 0.6, 0.3, 0.1 → a_ij = w_i / w_j is perfectly consistent.
        let target = [0.6, 0.3, 0.1];
        let mut m = AhpMatrix::identity(3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                m.judge(i, j, target[i] / target[j]);
            }
        }
        let w = m.weights();
        for (got, want) in w.weights.iter().zip(&target) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert!(w.consistency_ratio < 1e-9);
    }

    #[test]
    fn inconsistent_judgements_flagged() {
        // a > b (9x), b > c (9x), but c > a (9x): maximally cyclic.
        let m = AhpMatrix::identity(3)
            .with_judgement(0, 1, 9.0)
            .with_judgement(1, 2, 9.0)
            .with_judgement(2, 0, 9.0);
        let w = m.weights();
        assert!(!w.is_consistent(), "cr={}", w.consistency_ratio);
    }

    #[test]
    fn weights_sum_to_one_and_are_positive() {
        let m = AhpMatrix::identity(5)
            .with_judgement(0, 1, 3.0)
            .with_judgement(0, 2, 5.0)
            .with_judgement(3, 4, 0.5);
        let w = m.weights();
        let sum: f64 = w.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(w.weights.iter().all(|&x| x > 0.0));
        // Item 0 judged most important.
        assert!(w.weights[0] > w.weights[1] && w.weights[0] > w.weights[2]);
    }

    #[test]
    fn reciprocity_maintained_and_ratio_clamped() {
        let mut m = AhpMatrix::identity(2);
        m.judge(0, 1, 100.0); // clamped to 9
        assert!((m.get(0, 1) - 9.0).abs() < 1e-12);
        assert!((m.get(1, 0) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_range_size_panics() {
        AhpMatrix::identity(11);
    }
}
