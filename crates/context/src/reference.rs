//! The data context: ontology + master data + reference data.
//!
//! Example 4: "the e-Commerce company has a product catalog that can be
//! considered as master data by the wrangling process; the company is
//! interested in price comparison only for the products it sells."

use std::collections::{HashMap, HashSet};

use wrangler_table::{Table, Value};

use crate::ontology::Ontology;

/// Auxiliary information that informs the wrangling process (§2.3).
#[derive(Debug, Clone, Default)]
pub struct DataContext {
    /// Domain ontology for semantic matching and relevance.
    pub ontology: Ontology,
    /// Master data tables, keyed by entity kind (e.g. "product").
    master: HashMap<String, MasterData>,
    /// Reference value lists, keyed by domain name (e.g. "currency").
    reference_lists: HashMap<String, HashSet<Value>>,
}

/// A master-data table with a designated key column.
#[derive(Debug, Clone)]
pub struct MasterData {
    /// The authoritative table.
    pub table: Table,
    /// Name of the key column.
    pub key_column: String,
    /// Key values, pre-indexed for O(1) membership tests.
    keys: HashSet<Value>,
    /// Key → row of its *first* occurrence in the key column, matching the
    /// linear-scan semantics `lookup` always had (duplicate keys resolve to
    /// the earliest row).
    row_of_key: HashMap<Value, usize>, // hash-ok: lookup-only, never iterated
}

impl MasterData {
    /// Index a master table by its key column.
    pub fn new(table: Table, key_column: &str) -> wrangler_table::Result<Self> {
        let kcol = table.column_named(key_column)?;
        let keys: HashSet<Value> = kcol.iter().filter(|v| !v.is_null()).cloned().collect();
        let mut row_of_key: HashMap<Value, usize> = HashMap::with_capacity(keys.len()); // hash-ok: lookup-only
        for (idx, v) in kcol.iter().enumerate() {
            row_of_key.entry(v.clone()).or_insert(idx);
        }
        Ok(MasterData {
            table,
            key_column: key_column.to_string(),
            keys,
            row_of_key,
        })
    }

    /// True if the key value occurs in the master data.
    pub fn contains_key(&self, v: &Value) -> bool {
        self.keys.contains(v)
    }

    /// Number of master entities.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the master table has no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Look up the master value of `column` for the entity with the given
    /// key. O(1) through the first-occurrence index (it used to rescan the
    /// key column on every call, which dominated anchor building on large
    /// catalogs).
    pub fn lookup(&self, key: &Value, column: &str) -> Option<Value> {
        let idx = *self.row_of_key.get(key)?;
        self.table.get_named(idx, column).ok().cloned()
    }
}

impl DataContext {
    /// Empty context.
    pub fn new() -> Self {
        DataContext::default()
    }

    /// Context with the given ontology.
    pub fn with_ontology(ontology: Ontology) -> Self {
        DataContext {
            ontology,
            ..DataContext::default()
        }
    }

    /// Register a master-data table under an entity kind.
    pub fn add_master(
        &mut self,
        kind: &str,
        table: Table,
        key_column: &str,
    ) -> wrangler_table::Result<()> {
        self.master
            .insert(kind.to_string(), MasterData::new(table, key_column)?);
        Ok(())
    }

    /// Master data for an entity kind.
    pub fn master(&self, kind: &str) -> Option<&MasterData> {
        self.master.get(kind)
    }

    /// Register a reference value list (e.g. ISO currency codes).
    pub fn add_reference_list(&mut self, domain: &str, values: impl IntoIterator<Item = Value>) {
        self.reference_lists
            .entry(domain.to_string())
            .or_default()
            .extend(values);
    }

    /// True if `v` is a member of the named reference list.
    pub fn in_reference_list(&self, domain: &str, v: &Value) -> bool {
        self.reference_lists
            .get(domain)
            .is_some_and(|s| s.contains(v))
    }

    /// Fraction of the (non-null) values that appear in the reference list;
    /// `None` if the list is unknown. Used as an accuracy proxy by profiling.
    pub fn reference_coverage(&self, domain: &str, values: &[Value]) -> Option<f64> {
        let list = self.reference_lists.get(domain)?;
        let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        if non_null.is_empty() {
            return Some(1.0);
        }
        let hits = non_null.iter().filter(|v| list.contains(**v)).count();
        Some(hits as f64 / non_null.len() as f64)
    }

    /// Fraction of (non-null) candidate keys known to the master data of
    /// `kind`; `None` if no master data for that kind. This is Example 4's
    /// relevance signal: sources overlapping our catalog matter.
    pub fn master_coverage(&self, kind: &str, keys: &[Value]) -> Option<f64> {
        let m = self.master.get(kind)?;
        let non_null: Vec<&Value> = keys.iter().filter(|v| !v.is_null()).collect();
        if non_null.is_empty() {
            return Some(0.0);
        }
        let hits = non_null.iter().filter(|v| m.contains_key(v)).count();
        Some(hits as f64 / non_null.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Table {
        Table::literal(
            &["sku", "name"],
            vec![
                vec!["a1".into(), "Widget".into()],
                vec!["a2".into(), "Gadget".into()],
                vec!["a3".into(), "Sprocket".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn master_membership_and_lookup() {
        let m = MasterData::new(catalog(), "sku").unwrap();
        assert_eq!(m.len(), 3);
        assert!(m.contains_key(&"a1".into()));
        assert!(!m.contains_key(&"zz".into()));
        assert_eq!(m.lookup(&"a2".into(), "name"), Some("Gadget".into()));
        assert_eq!(m.lookup(&"zz".into(), "name"), None);
    }

    #[test]
    fn lookup_resolves_duplicate_keys_to_first_row() {
        let t = Table::literal(
            &["sku", "name"],
            vec![
                vec!["a1".into(), "First".into()],
                vec!["a1".into(), "Second".into()],
            ],
        )
        .unwrap();
        let m = MasterData::new(t, "sku").unwrap();
        assert_eq!(m.lookup(&"a1".into(), "name"), Some("First".into()));
    }

    #[test]
    fn master_coverage_signal() {
        let mut ctx = DataContext::new();
        ctx.add_master("product", catalog(), "sku").unwrap();
        let keys: Vec<Value> = vec!["a1".into(), "a2".into(), "xx".into(), Value::Null];
        let cov = ctx.master_coverage("product", &keys).unwrap();
        assert!((cov - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ctx.master_coverage("nothing", &keys), None);
        assert_eq!(ctx.master_coverage("product", &[Value::Null]), Some(0.0));
    }

    #[test]
    fn reference_lists() {
        let mut ctx = DataContext::new();
        ctx.add_reference_list("currency", ["USD", "EUR", "GBP"].map(Value::from));
        assert!(ctx.in_reference_list("currency", &"EUR".into()));
        assert!(!ctx.in_reference_list("currency", &"XX".into()));
        let vals: Vec<Value> = vec!["USD".into(), "XX".into(), Value::Null];
        assert!((ctx.reference_coverage("currency", &vals).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(ctx.reference_coverage("isbn", &vals), None);
        assert_eq!(ctx.reference_coverage("currency", &[]), Some(1.0));
    }

    #[test]
    fn bad_key_column_is_error() {
        assert!(MasterData::new(catalog(), "nope").is_err());
    }
}
