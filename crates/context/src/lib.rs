//! `wrangler-context` — user context and data context (§2.1, §2.3, §3.3).
//!
//! The paper's central architectural departure from classical ETL is that the
//! wrangling process is steered by two kinds of context rather than by a
//! hand-wired workflow:
//!
//! * The **user context** "specifies functional and non-functional
//!   requirements of the users, and the trade-offs between them". Here it is
//!   a declarative [`UserContext`]: a weighting over quality criteria derived
//!   with the **Analytic Hierarchy Process** ([`ahp`], ref \[31\]) from pairwise
//!   preference judgements, plus thresholds and budgets. Every selection
//!   decision downstream (sources, mappings, fused values) is scored against
//!   it via [`criteria::QualityVector::utility`].
//! * The **data context** "consists of the sources that may provide data for
//!   wrangling, and other information that may inform the wrangling process":
//!   a domain [`ontology::Ontology`] (concept hierarchy with synonyms, the
//!   stand-in for schema.org / the Product Types Ontology) and
//!   [`reference::DataContext`] master/reference data that matching, source
//!   selection and fusion consume as additional evidence.

pub mod ahp;
pub mod criteria;
pub mod ontology;
pub mod reference;
pub mod user;

pub use ahp::AhpMatrix;
pub use criteria::{Criterion, QualityVector};
pub use ontology::Ontology;
pub use reference::DataContext;
pub use user::UserContext;
