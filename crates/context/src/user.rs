//! The declarative user context.
//!
//! §4.2: "the user context must provide a declarative specification of the
//! user's requirements and priorities, both functional (data) and
//! non-functional (such as quality and cost trade-offs), so that the
//! components ... can be automatically and flexibly composed."

use crate::ahp::AhpMatrix;
use crate::criteria::{Criterion, QualityVector, ALL_CRITERIA};

/// A user's declarative requirements for a wrangling task.
#[derive(Debug, Clone)]
pub struct UserContext {
    /// Human-readable label (e.g. "routine price comparison").
    pub name: String,
    /// Criterion weights (aligned with [`ALL_CRITERIA`]); normalized.
    pub weights: [f64; 6],
    /// Consistency ratio of the AHP judgements that produced the weights.
    pub consistency_ratio: f64,
    /// Target columns the user needs in the wrangled output (functional
    /// requirement); empty means "whatever the integration produces".
    pub required_columns: Vec<String>,
    /// Minimum acceptable confidence for delivered values in \[0, 1\].
    pub min_confidence: f64,
    /// Budget in abstract cost units for source access + crowd feedback.
    pub budget: f64,
    /// Staleness horizon in ticks: data older than this scores 0 timeliness.
    pub freshness_horizon: u64,
    /// Optional cap on the number of sources to integrate.
    pub max_sources: Option<usize>,
}

impl UserContext {
    /// Build from AHP judgements over the six criteria.
    pub fn from_ahp(name: impl Into<String>, matrix: &AhpMatrix) -> Self {
        assert_eq!(
            matrix.len(),
            ALL_CRITERIA.len(),
            "matrix must cover all criteria"
        );
        let w = matrix.weights();
        let mut weights = [0.0; 6];
        weights.copy_from_slice(&w.weights);
        UserContext {
            name: name.into(),
            weights,
            consistency_ratio: w.consistency_ratio,
            required_columns: Vec::new(),
            min_confidence: 0.5,
            budget: f64::INFINITY,
            freshness_horizon: u64::MAX,
            max_sources: None,
        }
    }

    /// Uniform weights (the "no stated preference" default).
    pub fn balanced(name: impl Into<String>) -> Self {
        UserContext::from_ahp(name, &AhpMatrix::for_criteria())
    }

    /// Example 2's routine price-comparison profile: "the user may prefer
    /// features such as accuracy and timeliness to completeness".
    pub fn accuracy_first() -> Self {
        let acc = Criterion::Accuracy.index();
        let tim = Criterion::Timeliness.index();
        let com = Criterion::Completeness.index();
        let m = AhpMatrix::for_criteria()
            .with_judgement(acc, com, 5.0)
            .with_judgement(tim, com, 3.0)
            .with_judgement(acc, Criterion::Relevance.index(), 3.0)
            .with_judgement(tim, Criterion::Relevance.index(), 2.0)
            .with_judgement(acc, Criterion::Cost.index(), 3.0)
            .with_judgement(acc, Criterion::Consistency.index(), 2.0);
        let mut ctx = UserContext::from_ahp("routine price comparison (accuracy-first)", &m);
        // Calibrated confidences (freshness-tempered agreement shares) run
        // lower than raw vote shares; 0.6 delivers the ~80%+-correct tier.
        ctx.min_confidence = 0.6;
        ctx
    }

    /// Example 2's issue-investigation profile: "may require a more complete
    /// picture ... at the risk of presenting the user with more incorrect or
    /// out-of-date data".
    pub fn completeness_first() -> Self {
        let acc = Criterion::Accuracy.index();
        let com = Criterion::Completeness.index();
        let m = AhpMatrix::for_criteria()
            .with_judgement(com, acc, 5.0)
            .with_judgement(com, Criterion::Timeliness.index(), 5.0)
            .with_judgement(com, Criterion::Cost.index(), 3.0)
            .with_judgement(com, Criterion::Consistency.index(), 3.0)
            .with_judgement(com, Criterion::Relevance.index(), 2.0);
        let mut ctx = UserContext::from_ahp("issue investigation (completeness-first)", &m);
        ctx.min_confidence = 0.3;
        ctx
    }

    /// Set the functional requirement columns; builder style.
    pub fn with_required_columns(mut self, cols: &[&str]) -> Self {
        self.required_columns = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Set the budget; builder style.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// Set the freshness horizon; builder style.
    pub fn with_freshness_horizon(mut self, ticks: u64) -> Self {
        self.freshness_horizon = ticks;
        self
    }

    /// Set the source cap; builder style.
    pub fn with_max_sources(mut self, n: usize) -> Self {
        self.max_sources = Some(n);
        self
    }

    /// Weight of one criterion.
    pub fn weight(&self, c: Criterion) -> f64 {
        self.weights[c.index()]
    }

    /// Multi-criteria utility of a quality vector under this context.
    pub fn utility(&self, q: &QualityVector) -> f64 {
        q.utility(&self.weights)
    }

    /// Timeliness score of data of the given age under this context's
    /// horizon: linear decay from 1 (fresh) to 0 (at or past the horizon).
    pub fn timeliness_of_age(&self, age: u64) -> f64 {
        if self.freshness_horizon == u64::MAX {
            return 1.0;
        }
        if self.freshness_horizon == 0 {
            return if age == 0 { 1.0 } else { 0.0 };
        }
        (1.0 - age as f64 / self.freshness_horizon as f64).clamp(0.0, 1.0)
    }

    /// Rank candidate quality vectors by utility, best first, returning
    /// indices (ties broken by index for determinism).
    pub fn rank(&self, candidates: &[QualityVector]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..candidates.len()).collect();
        idx.sort_by(|&a, &b| {
            self.utility(&candidates[b])
                .total_cmp(&self.utility(&candidates[a]))
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_express_example_2() {
        let acc = UserContext::accuracy_first();
        let com = UserContext::completeness_first();
        assert!(acc.weight(Criterion::Accuracy) > acc.weight(Criterion::Completeness));
        assert!(com.weight(Criterion::Completeness) > com.weight(Criterion::Accuracy));
        assert!(acc.consistency_ratio <= 0.1, "cr={}", acc.consistency_ratio);
        assert!(com.consistency_ratio <= 0.1, "cr={}", com.consistency_ratio);
    }

    #[test]
    fn contexts_rank_candidates_differently() {
        // Candidate A: accurate but sparse. Candidate B: complete but sloppy.
        let a = QualityVector::neutral()
            .with(Criterion::Accuracy, 0.95)
            .with(Criterion::Completeness, 0.4);
        let b = QualityVector::neutral()
            .with(Criterion::Accuracy, 0.5)
            .with(Criterion::Completeness, 0.95);
        let acc = UserContext::accuracy_first();
        let com = UserContext::completeness_first();
        assert_eq!(acc.rank(&[a, b])[0], 0);
        assert_eq!(com.rank(&[a, b])[0], 1);
    }

    #[test]
    fn balanced_weights_are_uniform() {
        let ctx = UserContext::balanced("x");
        for c in ALL_CRITERIA {
            assert!((ctx.weight(c) - 1.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn timeliness_decay() {
        let ctx = UserContext::balanced("x").with_freshness_horizon(10);
        assert_eq!(ctx.timeliness_of_age(0), 1.0);
        assert!((ctx.timeliness_of_age(5) - 0.5).abs() < 1e-12);
        assert_eq!(ctx.timeliness_of_age(10), 0.0);
        assert_eq!(ctx.timeliness_of_age(99), 0.0);
        let forever = UserContext::balanced("y");
        assert_eq!(forever.timeliness_of_age(1_000_000), 1.0);
    }

    #[test]
    fn builders() {
        let ctx = UserContext::balanced("x")
            .with_required_columns(&["sku", "price"])
            .with_budget(20.0)
            .with_max_sources(5);
        assert_eq!(ctx.required_columns, vec!["sku", "price"]);
        assert_eq!(ctx.budget, 20.0);
        assert_eq!(ctx.max_sources, Some(5));
    }

    #[test]
    fn rank_is_deterministic_under_ties() {
        let q = QualityVector::neutral();
        let ctx = UserContext::balanced("x");
        assert_eq!(ctx.rank(&[q, q, q]), vec![0, 1, 2]);
    }
}
