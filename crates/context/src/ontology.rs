//! A lightweight domain ontology: concept hierarchy + synonyms + datatype
//! facets.
//!
//! Example 4: "there are standard formats, for example in schema.org, for
//! describing products and offers, and there are ontologies that describe
//! products... a product types ontology could be used to inform the selection
//! of sources based on their relevance, as an input to the matching of
//! sources that supplements syntactic matching, and as a guide to the fusion
//! of property values".

use std::collections::HashMap;

use wrangler_table::DataType;

/// Identifier of a concept within an ontology.
pub type ConceptId = usize;

/// One concept: a named node in the subsumption hierarchy, optionally typed
/// (for property concepts like `price`) and carrying synonyms.
#[derive(Debug, Clone)]
pub struct Concept {
    /// Canonical name (lowercase).
    pub name: String,
    /// Parent in the subsumption hierarchy (None for roots).
    pub parent: Option<ConceptId>,
    /// Expected data type for property concepts.
    pub dtype: Option<DataType>,
    /// Alternative surface forms (lowercase).
    pub synonyms: Vec<String>,
}

/// A concept hierarchy with synonym-based term resolution.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    concepts: Vec<Concept>,
    /// Lowercased term (name or synonym) → concept.
    term_index: HashMap<String, ConceptId>,
}

impl Ontology {
    /// Empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Add a concept; `parent` must already exist. Returns its id.
    pub fn add_concept(
        &mut self,
        name: &str,
        parent: Option<ConceptId>,
        dtype: Option<DataType>,
        synonyms: &[&str],
    ) -> ConceptId {
        if let Some(p) = parent {
            assert!(p < self.concepts.len(), "parent must exist");
        }
        let id = self.concepts.len();
        let name = name.to_lowercase();
        self.term_index.insert(name.clone(), id);
        let mut syns = Vec::with_capacity(synonyms.len());
        for s in synonyms {
            let s = s.to_lowercase();
            self.term_index.insert(s.clone(), id);
            syns.push(s);
        }
        self.concepts.push(Concept {
            name,
            parent,
            dtype,
            synonyms: syns,
        });
        id
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True if the ontology has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Concept by id.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id]
    }

    /// Resolve a surface term (case-insensitive, punctuation-tolerant:
    /// `_`/`-` treated as spaces) to a concept.
    pub fn resolve(&self, term: &str) -> Option<ConceptId> {
        let norm = normalize(term);
        self.term_index.get(&norm).copied().or_else(|| {
            // Try each token of a compound term ("product_price" -> "price").
            norm.split(' ')
                .rev()
                .find_map(|tok| self.term_index.get(tok).copied())
        })
    }

    /// True if `a` is `b` or a descendant of `b`.
    pub fn subsumed_by(&self, a: ConceptId, b: ConceptId) -> bool {
        let mut cur = Some(a);
        while let Some(c) = cur {
            if c == b {
                return true;
            }
            cur = self.concepts[c].parent;
        }
        false
    }

    /// Depth of a concept (roots have depth 0).
    pub fn depth(&self, id: ConceptId) -> usize {
        let mut d = 0;
        let mut cur = self.concepts[id].parent;
        while let Some(c) = cur {
            d += 1;
            cur = self.concepts[c].parent;
        }
        d
    }

    /// Lowest common subsumer of two concepts, if they share a root.
    pub fn lcs(&self, a: ConceptId, b: ConceptId) -> Option<ConceptId> {
        let mut ancestors = Vec::new();
        let mut cur = Some(a);
        while let Some(c) = cur {
            ancestors.push(c);
            cur = self.concepts[c].parent;
        }
        let mut cur = Some(b);
        while let Some(c) = cur {
            if ancestors.contains(&c) {
                return Some(c);
            }
            cur = self.concepts[c].parent;
        }
        None
    }

    /// Wu–Palmer-style semantic similarity in \[0, 1\]:
    /// `2·depth(lcs) / (depth(a) + depth(b) + 2)` (the +2 treats roots as
    /// depth-1 so distinct roots score 0 < s < 1 only when related).
    /// Unrelated concepts (no common subsumer) score 0; identical score 1.
    pub fn similarity(&self, a: ConceptId, b: ConceptId) -> f64 {
        if a == b {
            return 1.0;
        }
        match self.lcs(a, b) {
            None => 0.0,
            Some(l) => {
                let dl = self.depth(l) as f64 + 1.0;
                let da = self.depth(a) as f64 + 1.0;
                let db = self.depth(b) as f64 + 1.0;
                (2.0 * dl / (da + db)).clamp(0.0, 1.0)
            }
        }
    }

    /// Semantic similarity of two surface terms: 0 if either is unknown.
    pub fn term_similarity(&self, a: &str, b: &str) -> f64 {
        match (self.resolve(a), self.resolve(b)) {
            (Some(x), Some(y)) => self.similarity(x, y),
            _ => 0.0,
        }
    }

    /// Expected data type of the concept a term resolves to, if any.
    pub fn expected_dtype(&self, term: &str) -> Option<DataType> {
        self.resolve(term).and_then(|id| self.concepts[id].dtype)
    }

    /// A ready-made e-commerce product ontology (the running example's
    /// stand-in for schema.org/Product + the Product Types Ontology).
    pub fn ecommerce() -> Self {
        let mut o = Ontology::new();
        let product = o.add_concept("product", None, None, &["item", "article"]);
        let offer = o.add_concept("offer", None, None, &["listing", "deal"]);
        // Product properties.
        o.add_concept(
            "name",
            Some(product),
            Some(DataType::Str),
            &["title", "product name", "label", "product_title"],
        );
        o.add_concept(
            "sku",
            Some(product),
            Some(DataType::Str),
            &["id", "product id", "code", "mpn", "asin"],
        );
        o.add_concept(
            "brand",
            Some(product),
            Some(DataType::Str),
            &["manufacturer", "maker", "vendor brand"],
        );
        o.add_concept(
            "category",
            Some(product),
            Some(DataType::Str),
            &["type", "product type", "department", "genre"],
        );
        o.add_concept(
            "description",
            Some(product),
            Some(DataType::Str),
            &["desc", "details", "summary"],
        );
        // Offer properties.
        o.add_concept(
            "price",
            Some(offer),
            Some(DataType::Float),
            &[
                "cost",
                "amount",
                "price usd",
                "unit price",
                "sale price",
                "price_eur",
            ],
        );
        o.add_concept(
            "currency",
            Some(offer),
            Some(DataType::Str),
            &["ccy", "currency code"],
        );
        o.add_concept(
            "availability",
            Some(offer),
            Some(DataType::Str),
            &["stock", "in stock", "inventory", "stock status"],
        );
        o.add_concept(
            "seller",
            Some(offer),
            Some(DataType::Str),
            &["merchant", "retailer", "store", "shop", "vendor"],
        );
        o.add_concept(
            "rating",
            Some(offer),
            Some(DataType::Float),
            &["stars", "score", "review score"],
        );
        o.add_concept(
            "url",
            Some(offer),
            Some(DataType::Str),
            &["link", "product url", "website"],
        );
        o
    }

    /// A business-locations ontology for Example 3.
    pub fn locations() -> Self {
        let mut o = Ontology::new();
        let business = o.add_concept("business", None, None, &["place", "venue", "establishment"]);
        o.add_concept(
            "name",
            Some(business),
            Some(DataType::Str),
            &["business name", "title"],
        );
        o.add_concept(
            "address",
            Some(business),
            Some(DataType::Str),
            &["street", "street address", "addr", "location"],
        );
        o.add_concept(
            "city",
            Some(business),
            Some(DataType::Str),
            &["town", "locality"],
        );
        o.add_concept(
            "postcode",
            Some(business),
            Some(DataType::Str),
            &["zip", "zip code", "postal code"],
        );
        o.add_concept("latitude", Some(business), Some(DataType::Float), &["lat"]);
        o.add_concept(
            "longitude",
            Some(business),
            Some(DataType::Float),
            &["lon", "lng", "long"],
        );
        o.add_concept(
            "phone",
            Some(business),
            Some(DataType::Str),
            &["telephone", "tel", "phone number"],
        );
        o.add_concept(
            "category",
            Some(business),
            Some(DataType::Str),
            &["type", "business type", "cuisine"],
        );
        o.add_concept(
            "url",
            Some(business),
            Some(DataType::Str),
            &["website", "homepage", "web"],
        );
        o
    }
}

fn normalize(term: &str) -> String {
    term.trim()
        .to_lowercase()
        .replace(['_', '-'], " ")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_names_synonyms_and_compounds() {
        let o = Ontology::ecommerce();
        let price = o.resolve("price").unwrap();
        assert_eq!(o.resolve("COST"), Some(price));
        assert_eq!(o.resolve("unit-price"), Some(price));
        assert_eq!(o.resolve("product_price"), Some(price)); // token fallback
        assert_eq!(o.resolve("frobnicator"), None);
    }

    #[test]
    fn subsumption_and_depth() {
        let mut o = Ontology::new();
        let root = o.add_concept("thing", None, None, &[]);
        let mid = o.add_concept("product", Some(root), None, &[]);
        let leaf = o.add_concept("book", Some(mid), None, &[]);
        assert!(o.subsumed_by(leaf, root));
        assert!(o.subsumed_by(leaf, leaf));
        assert!(!o.subsumed_by(root, leaf));
        assert_eq!(o.depth(root), 0);
        assert_eq!(o.depth(leaf), 2);
    }

    #[test]
    fn similarity_properties() {
        let mut o = Ontology::new();
        let root = o.add_concept("thing", None, None, &[]);
        let a = o.add_concept("a", Some(root), None, &[]);
        let b = o.add_concept("b", Some(root), None, &[]);
        let a1 = o.add_concept("a1", Some(a), None, &[]);
        let a2 = o.add_concept("a2", Some(a), None, &[]);
        let other_root = o.add_concept("alien", None, None, &[]);
        assert_eq!(o.similarity(a, a), 1.0);
        // Siblings under the same parent are more similar than cousins.
        assert!(o.similarity(a1, a2) > o.similarity(a1, b));
        // Symmetry.
        assert!((o.similarity(a1, b) - o.similarity(b, a1)).abs() < 1e-12);
        // Unrelated roots score 0.
        assert_eq!(o.similarity(a, other_root), 0.0);
    }

    #[test]
    fn term_similarity_uses_synonyms() {
        let o = Ontology::ecommerce();
        assert_eq!(o.term_similarity("cost", "price"), 1.0);
        assert!(o.term_similarity("price", "stock") > 0.0); // both offer props
        assert!(o.term_similarity("price", "stock") < 1.0);
        assert_eq!(o.term_similarity("price", "zorp"), 0.0);
    }

    #[test]
    fn expected_dtype_exposed() {
        let o = Ontology::ecommerce();
        assert_eq!(o.expected_dtype("cost"), Some(DataType::Float));
        assert_eq!(o.expected_dtype("title"), Some(DataType::Str));
        assert_eq!(o.expected_dtype("nonsense"), None);
    }

    #[test]
    fn locations_ontology_resolves_geo_terms() {
        let o = Ontology::locations();
        assert!(o.resolve("zip").is_some());
        assert_eq!(o.resolve("lat"), o.resolve("latitude"));
        assert!(o.term_similarity("lat", "lng") >= 0.5); // sibling properties
    }
}
