//! `wrangler-feedback` — pay-as-you-go feedback as a first-class citizen.
//!
//! §2.4: "rather than depending upon a continuous labor-intensive wrangling
//! effort ... we propose an incremental, pay-as-you-go approach, in which
//! the 'payment' can take different forms", and — critically — "feedback of
//! one type should be able to inform many different steps in the wrangling
//! process". §3.2 observes the state of the art uses "a single type of
//! feedback ... to influence specific data management tasks".
//!
//! * [`item`] — the uniform feedback model: typed targets (value, tuple,
//!   duplicate pair, mapping, source), verdicts, reliability and cost;
//! * [`store`] — the append-only feedback ledger inside the Working Data;
//! * [`router`] — the paper's key move: route one feedback item into
//!   *derived signals* for every component that can learn from it (source
//!   trust, mapping belief, fusion, ER rules) — with a `siloed` mode
//!   implementing the single-component state of the art as the E4 baseline;
//! * [`crowd`] — simulated crowdsourcing (\[13\], \[20\]): workers with latent
//!   accuracy, majority aggregation, and EM-style joint estimation of answer
//!   truth and worker reliability.

pub mod crowd;
pub mod item;
pub mod router;
pub mod store;

pub use item::{FeedbackItem, FeedbackTarget, Verdict};
pub use router::{route, RoutedSignal, RoutingMode};
pub use store::FeedbackStore;
