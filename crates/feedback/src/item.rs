//! The uniform feedback model.

use wrangler_table::Value;

/// What a feedback item is about.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedbackTarget {
    /// A fused value of entity `entity`, attribute `attr` (optionally naming
    /// the value judged, so stale feedback can be detected after re-fusion).
    Value {
        entity: usize,
        attr: usize,
        value: Option<Value>,
    },
    /// A whole wrangled tuple (its relevance/correctness).
    Tuple { entity: usize },
    /// Whether two records denote the same entity.
    DuplicatePair { row_a: usize, row_b: usize },
    /// A mapping of one source.
    Mapping { source: usize },
    /// A source as a whole ("this site is junk").
    Source { source: usize },
    /// An extraction result of one source ("the wrapper grabbed the wrong
    /// field").
    Extraction { source: usize },
}

/// The judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The target is correct / relevant / a duplicate.
    Positive,
    /// The target is wrong / irrelevant / not a duplicate.
    Negative,
}

impl Verdict {
    /// As a boolean.
    pub fn is_positive(self) -> bool {
        matches!(self, Verdict::Positive)
    }
}

/// One piece of feedback, from a user or an aggregated crowd.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackItem {
    /// What it is about.
    pub target: FeedbackTarget,
    /// The judgement.
    pub verdict: Verdict,
    /// Estimated reliability of the judge in \[0, 1\] (1.0 = the domain
    /// expert; crowd aggregates carry their estimated accuracy).
    pub reliability: f64,
    /// Cost paid for this item, in budget units (staff effort or crowd fee).
    pub cost: f64,
}

impl FeedbackItem {
    /// Expert feedback: fully reliable, at the given effort cost.
    pub fn expert(target: FeedbackTarget, verdict: Verdict, cost: f64) -> FeedbackItem {
        FeedbackItem {
            target,
            verdict,
            reliability: 1.0,
            cost,
        }
    }

    /// Crowd-aggregated feedback with estimated reliability.
    pub fn crowd(
        target: FeedbackTarget,
        verdict: Verdict,
        reliability: f64,
        cost: f64,
    ) -> FeedbackItem {
        FeedbackItem {
            target,
            verdict,
            reliability: reliability.clamp(0.0, 1.0),
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = FeedbackItem::expert(FeedbackTarget::Tuple { entity: 3 }, Verdict::Negative, 2.0);
        assert_eq!(f.reliability, 1.0);
        assert!(!f.verdict.is_positive());
        let c = FeedbackItem::crowd(
            FeedbackTarget::DuplicatePair { row_a: 1, row_b: 2 },
            Verdict::Positive,
            1.3,
            0.05,
        );
        assert_eq!(c.reliability, 1.0); // clamped
        assert!(c.verdict.is_positive());
    }
}
