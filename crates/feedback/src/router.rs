//! Feedback routing: one item, many informed components.
//!
//! "The identification of several correct (or incorrect) results may inform
//! both source selection and mapping generation" (§2.4). The router turns a
//! feedback item plus minimal provenance (which sources supported the judged
//! artifact) into derived [`RoutedSignal`]s for every component with
//! something to learn. [`RoutingMode::Siloed`] reproduces the
//! state-of-the-art baseline (§3.2: feedback is "used to support a single
//! data management task") for experiment E4b.

use crate::item::{FeedbackItem, FeedbackTarget};

/// A component-directed learning signal derived from feedback.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutedSignal {
    /// Adjust trust in a source (positive = raise).
    SourceTrust {
        source: usize,
        positive: bool,
        reliability: f64,
    },
    /// Adjust belief in a source's mapping.
    MappingBelief {
        source: usize,
        positive: bool,
        reliability: f64,
    },
    /// Re-fuse a slot (its winning value was judged).
    RefuseSlot { entity: usize, attr: usize },
    /// Add a labeled pair to the ER training set.
    ErLabel {
        row_a: usize,
        row_b: usize,
        is_match: bool,
        reliability: f64,
    },
    /// Re-check a source's wrapper (extraction judged wrong).
    RecheckWrapper { source: usize },
    /// Adjust the relevance estimate of an entity's tuple.
    TupleRelevance {
        entity: usize,
        positive: bool,
        reliability: f64,
    },
}

/// How widely feedback is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Paper's proposal: feedback informs every subscribable component.
    Shared,
    /// Baseline: feedback only touches the component it was given on.
    Siloed,
}

/// Provenance needed to route value-level feedback: which sources supported
/// the judged value, and which contradicted it.
#[derive(Debug, Clone, Default)]
pub struct ValueProvenance {
    /// Sources that claimed the judged value.
    pub supporters: Vec<usize>,
    /// Sources that claimed something else for the same slot.
    pub dissenters: Vec<usize>,
}

/// Route one feedback item into component signals.
pub fn route(
    item: &FeedbackItem,
    provenance: &ValueProvenance,
    mode: RoutingMode,
) -> Vec<RoutedSignal> {
    let mut out = Vec::new();
    let r = item.reliability;
    let pos = item.verdict.is_positive();
    match &item.target {
        FeedbackTarget::Value { entity, attr, .. } => {
            // Direct effect: the slot must be re-fused with this evidence.
            out.push(RoutedSignal::RefuseSlot {
                entity: *entity,
                attr: *attr,
            });
            if mode == RoutingMode::Shared {
                // Verdict on the value is (discounted) verdict on its
                // supporters and the *opposite* on dissenters.
                // One value is weak evidence about a whole source: a source
                // with a 20% error rate is still 80% useful. Discount hard so
                // trust moves with the *accumulation* of judgements.
                for &s in &provenance.supporters {
                    out.push(RoutedSignal::SourceTrust {
                        source: s,
                        positive: pos,
                        reliability: r * 0.3,
                    });
                    out.push(RoutedSignal::MappingBelief {
                        source: s,
                        positive: pos,
                        reliability: r * 0.2,
                    });
                }
                for &s in &provenance.dissenters {
                    out.push(RoutedSignal::SourceTrust {
                        source: s,
                        positive: !pos,
                        reliability: r * 0.15,
                    });
                }
            }
        }
        FeedbackTarget::Tuple { entity } => {
            out.push(RoutedSignal::TupleRelevance {
                entity: *entity,
                positive: pos,
                reliability: r,
            });
            if mode == RoutingMode::Shared {
                for &s in &provenance.supporters {
                    out.push(RoutedSignal::SourceTrust {
                        source: s,
                        positive: pos,
                        reliability: r * 0.3,
                    });
                }
            }
        }
        FeedbackTarget::DuplicatePair { row_a, row_b } => {
            out.push(RoutedSignal::ErLabel {
                row_a: *row_a,
                row_b: *row_b,
                is_match: pos,
                reliability: r,
            });
        }
        FeedbackTarget::Mapping { source } => {
            out.push(RoutedSignal::MappingBelief {
                source: *source,
                positive: pos,
                reliability: r,
            });
            if mode == RoutingMode::Shared {
                out.push(RoutedSignal::SourceTrust {
                    source: *source,
                    positive: pos,
                    reliability: r * 0.5,
                });
            }
        }
        FeedbackTarget::Source { source } => {
            out.push(RoutedSignal::SourceTrust {
                source: *source,
                positive: pos,
                reliability: r,
            });
            if mode == RoutingMode::Shared && !pos {
                out.push(RoutedSignal::RecheckWrapper { source: *source });
            }
        }
        FeedbackTarget::Extraction { source } => {
            out.push(RoutedSignal::RecheckWrapper { source: *source });
            if mode == RoutingMode::Shared {
                out.push(RoutedSignal::SourceTrust {
                    source: *source,
                    positive: pos,
                    reliability: r * 0.5,
                });
                out.push(RoutedSignal::MappingBelief {
                    source: *source,
                    positive: pos,
                    reliability: r * 0.5,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Verdict;

    fn value_item(positive: bool) -> FeedbackItem {
        FeedbackItem::expert(
            FeedbackTarget::Value {
                entity: 4,
                attr: 1,
                value: None,
            },
            if positive {
                Verdict::Positive
            } else {
                Verdict::Negative
            },
            1.0,
        )
    }

    #[test]
    fn shared_value_feedback_reaches_sources_and_mappings() {
        let prov = ValueProvenance {
            supporters: vec![0, 2],
            dissenters: vec![5],
        };
        let signals = route(&value_item(false), &prov, RoutingMode::Shared);
        // Refuse + 2 supporters × 2 signals + 1 dissenter.
        assert_eq!(signals.len(), 1 + 4 + 1);
        assert!(signals.contains(&RoutedSignal::RefuseSlot { entity: 4, attr: 1 }));
        assert!(signals.contains(&RoutedSignal::SourceTrust {
            source: 0,
            positive: false,
            reliability: 0.3
        }));
        // Dissenter gets the opposite verdict, further discounted.
        assert!(signals.contains(&RoutedSignal::SourceTrust {
            source: 5,
            positive: true,
            reliability: 0.15
        }));
    }

    #[test]
    fn siloed_value_feedback_only_refuses() {
        let prov = ValueProvenance {
            supporters: vec![0, 2],
            dissenters: vec![5],
        };
        let signals = route(&value_item(false), &prov, RoutingMode::Siloed);
        assert_eq!(
            signals,
            vec![RoutedSignal::RefuseSlot { entity: 4, attr: 1 }]
        );
    }

    #[test]
    fn duplicate_feedback_becomes_er_label_in_both_modes() {
        let item = FeedbackItem::crowd(
            FeedbackTarget::DuplicatePair { row_a: 3, row_b: 8 },
            Verdict::Positive,
            0.7,
            0.1,
        );
        for mode in [RoutingMode::Shared, RoutingMode::Siloed] {
            let signals = route(&item, &ValueProvenance::default(), mode);
            assert_eq!(
                signals,
                vec![RoutedSignal::ErLabel {
                    row_a: 3,
                    row_b: 8,
                    is_match: true,
                    reliability: 0.7
                }]
            );
        }
    }

    #[test]
    fn negative_source_feedback_triggers_wrapper_recheck_when_shared() {
        let item =
            FeedbackItem::expert(FeedbackTarget::Source { source: 7 }, Verdict::Negative, 1.0);
        let shared = route(&item, &ValueProvenance::default(), RoutingMode::Shared);
        assert!(shared.contains(&RoutedSignal::RecheckWrapper { source: 7 }));
        let siloed = route(&item, &ValueProvenance::default(), RoutingMode::Siloed);
        assert!(!siloed.contains(&RoutedSignal::RecheckWrapper { source: 7 }));
    }

    #[test]
    fn shared_mode_always_yields_at_least_as_many_signals() {
        let items = vec![
            value_item(true),
            FeedbackItem::expert(FeedbackTarget::Tuple { entity: 0 }, Verdict::Positive, 1.0),
            FeedbackItem::expert(
                FeedbackTarget::Mapping { source: 1 },
                Verdict::Negative,
                1.0,
            ),
            FeedbackItem::expert(
                FeedbackTarget::Extraction { source: 2 },
                Verdict::Negative,
                1.0,
            ),
        ];
        let prov = ValueProvenance {
            supporters: vec![1],
            dissenters: vec![],
        };
        for item in items {
            let shared = route(&item, &prov, RoutingMode::Shared).len();
            let siloed = route(&item, &prov, RoutingMode::Siloed).len();
            assert!(shared >= siloed, "{item:?}");
        }
    }
}
