//! The feedback ledger.

use crate::item::{FeedbackItem, FeedbackTarget};

/// Append-only store of all feedback received, part of the Working Data.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    items: Vec<FeedbackItem>,
}

impl FeedbackStore {
    /// Empty store.
    pub fn new() -> Self {
        FeedbackStore::default()
    }

    /// Record an item; returns its index.
    pub fn add(&mut self, item: FeedbackItem) -> usize {
        self.items.push(item);
        self.items.len() - 1
    }

    /// All items in arrival order.
    pub fn items(&self) -> &[FeedbackItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no feedback has been received.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total cost paid for feedback so far — the "payment" ledger of the
    /// pay-as-you-go model.
    pub fn total_cost(&self) -> f64 {
        self.items.iter().map(|i| i.cost).sum()
    }

    /// Items about a given source (mapping/source/extraction targets).
    pub fn about_source(&self, source: usize) -> Vec<&FeedbackItem> {
        self.items
            .iter()
            .filter(|i| {
                matches!(
                    i.target,
                    FeedbackTarget::Mapping { source: s }
                    | FeedbackTarget::Source { source: s }
                    | FeedbackTarget::Extraction { source: s }
                    if s == source
                )
            })
            .collect()
    }

    /// Items about a given entity (value/tuple targets).
    pub fn about_entity(&self, entity: usize) -> Vec<&FeedbackItem> {
        self.items
            .iter()
            .filter(|i| {
                matches!(
                    i.target,
                    FeedbackTarget::Value { entity: e, .. } | FeedbackTarget::Tuple { entity: e }
                    if e == entity
                )
            })
            .collect()
    }

    /// All duplicate-pair labels, as (row_a, row_b, is_match, reliability) —
    /// the training set for ER rule refinement.
    pub fn duplicate_labels(&self) -> Vec<(usize, usize, bool, f64)> {
        self.items
            .iter()
            .filter_map(|i| match i.target {
                FeedbackTarget::DuplicatePair { row_a, row_b } => {
                    Some((row_a, row_b, i.verdict.is_positive(), i.reliability))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Verdict;

    #[test]
    fn ledger_accumulates_and_queries() {
        let mut s = FeedbackStore::new();
        s.add(FeedbackItem::expert(
            FeedbackTarget::Value {
                entity: 1,
                attr: 0,
                value: None,
            },
            Verdict::Negative,
            1.0,
        ));
        s.add(FeedbackItem::expert(
            FeedbackTarget::Source { source: 2 },
            Verdict::Negative,
            1.0,
        ));
        s.add(FeedbackItem::crowd(
            FeedbackTarget::DuplicatePair { row_a: 0, row_b: 9 },
            Verdict::Positive,
            0.8,
            0.1,
        ));
        assert_eq!(s.len(), 3);
        assert!((s.total_cost() - 2.1).abs() < 1e-12);
        assert_eq!(s.about_entity(1).len(), 1);
        assert_eq!(s.about_entity(7).len(), 0);
        assert_eq!(s.about_source(2).len(), 1);
        assert_eq!(s.duplicate_labels(), vec![(0, 9, true, 0.8)]);
    }
}
