//! Simulated crowdsourcing with uncertain workers (\[13\], \[20\]).
//!
//! Workers have latent accuracies; tasks are binary questions with a hidden
//! ground truth. Aggregation is either simple majority or EM-style joint
//! estimation of truth and worker accuracy (a binary Dawid–Skene): the
//! latter both answers better and yields the per-task reliability the
//! uniform uncertainty model needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated crowd of workers with latent accuracies.
#[derive(Debug, Clone)]
pub struct Crowd {
    accuracies: Vec<f64>,
    /// Fee per answered micro-task per worker.
    pub fee: f64,
    rng: StdRng,
}

/// One worker's vote on one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vote {
    /// Worker index.
    pub worker: usize,
    /// Task index.
    pub task: usize,
    /// The answer given.
    pub answer: bool,
}

/// Aggregated crowd answers.
#[derive(Debug, Clone)]
pub struct CrowdAnswers {
    /// Estimated answer per task.
    pub answers: Vec<bool>,
    /// Estimated confidence per task in [0.5, 1].
    pub confidence: Vec<f64>,
    /// Estimated worker accuracies (EM only; majority fills 0.5).
    pub worker_accuracy: Vec<f64>,
    /// Total fees paid.
    pub cost: f64,
}

impl Crowd {
    /// A crowd whose worker accuracies are drawn uniformly from `acc_range`.
    pub fn new(num_workers: usize, acc_range: (f64, f64), fee: f64, seed: u64) -> Crowd {
        let mut rng = StdRng::seed_from_u64(seed);
        let accuracies = (0..num_workers)
            .map(|_| rng.gen_range(acc_range.0..=acc_range.1))
            .collect();
        Crowd {
            accuracies,
            fee,
            rng,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.accuracies.len()
    }

    /// True if the crowd has no workers.
    pub fn is_empty(&self) -> bool {
        self.accuracies.is_empty()
    }

    /// True latent accuracy of a worker (test oracle; the system never sees it).
    pub fn true_accuracy(&self, worker: usize) -> f64 {
        self.accuracies[worker]
    }

    /// Ask `k` distinct random workers each of the `truths` tasks; votes are
    /// correct with each worker's latent probability.
    pub fn ask(&mut self, truths: &[bool], k: usize) -> Vec<Vote> {
        let k = k.min(self.accuracies.len());
        let mut votes = Vec::with_capacity(truths.len() * k);
        for (task, &truth) in truths.iter().enumerate() {
            // Sample k distinct workers.
            let mut pool: Vec<usize> = (0..self.accuracies.len()).collect();
            for slot in 0..k {
                let pick = slot + self.rng.gen_range(0..pool.len() - slot);
                pool.swap(slot, pick);
                let worker = pool[slot];
                let correct = self.rng.gen::<f64>() < self.accuracies[worker];
                votes.push(Vote {
                    worker,
                    task,
                    answer: if correct { truth } else { !truth },
                });
            }
        }
        votes
    }
}

/// Majority aggregation.
pub fn aggregate_majority(
    votes: &[Vote],
    num_tasks: usize,
    num_workers: usize,
    fee: f64,
) -> CrowdAnswers {
    let mut yes = vec![0usize; num_tasks];
    let mut total = vec![0usize; num_tasks];
    for v in votes {
        total[v.task] += 1;
        yes[v.task] += usize::from(v.answer);
    }
    let mut answers = Vec::with_capacity(num_tasks);
    let mut confidence = Vec::with_capacity(num_tasks);
    for t in 0..num_tasks {
        let n = total[t].max(1);
        let frac = yes[t] as f64 / n as f64;
        answers.push(frac >= 0.5);
        confidence.push(frac.max(1.0 - frac));
    }
    CrowdAnswers {
        answers,
        confidence,
        worker_accuracy: vec![0.5; num_workers],
        cost: votes.len() as f64 * fee,
    }
}

/// EM aggregation (binary Dawid–Skene): alternate estimating task truths
/// (weighted by worker accuracy log-odds) and worker accuracies (agreement
/// with current truth estimates).
pub fn aggregate_em(
    votes: &[Vote],
    num_tasks: usize,
    num_workers: usize,
    fee: f64,
    iterations: usize,
) -> CrowdAnswers {
    let mut acc = vec![0.7f64; num_workers];
    let mut p_yes = vec![0.5f64; num_tasks];
    for _ in 0..iterations {
        // E-step: P(task = yes) from votes under current accuracies.
        let mut log_odds = vec![0.0f64; num_tasks];
        for v in votes {
            let a = acc[v.worker].clamp(0.05, 0.95);
            let llr = (a / (1.0 - a)).ln();
            log_odds[v.task] += if v.answer { llr } else { -llr };
        }
        for t in 0..num_tasks {
            p_yes[t] = 1.0 / (1.0 + (-log_odds[t]).exp());
        }
        // M-step: worker accuracy = expected agreement with the truth.
        let mut agree = vec![0.0f64; num_workers];
        let mut count = vec![0.0f64; num_workers];
        for v in votes {
            let p = p_yes[v.task];
            agree[v.worker] += if v.answer { p } else { 1.0 - p };
            count[v.worker] += 1.0;
        }
        for w in 0..num_workers {
            if count[w] > 0.0 {
                // Light smoothing keeps accuracies off the boundary.
                acc[w] = (agree[w] + 1.0) / (count[w] + 2.0);
            }
        }
    }
    let answers: Vec<bool> = p_yes.iter().map(|&p| p >= 0.5).collect();
    let confidence: Vec<f64> = p_yes.iter().map(|&p| p.max(1.0 - p)).collect();
    CrowdAnswers {
        answers,
        confidence,
        worker_accuracy: acc,
        cost: votes.len() as f64 * fee,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truths(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 3 != 0).collect()
    }

    fn accuracy(answers: &[bool], truths: &[bool]) -> f64 {
        answers.iter().zip(truths).filter(|(a, t)| a == t).count() as f64 / truths.len() as f64
    }

    #[test]
    fn majority_beats_single_worker_on_average() {
        let ts = truths(200);
        let mut crowd = Crowd::new(30, (0.6, 0.9), 0.05, 42);
        let votes1 = crowd.ask(&ts, 1);
        let votes5 = crowd.ask(&ts, 5);
        let a1 = accuracy(
            &aggregate_majority(&votes1, ts.len(), 30, 0.05).answers,
            &ts,
        );
        let a5 = accuracy(
            &aggregate_majority(&votes5, ts.len(), 30, 0.05).answers,
            &ts,
        );
        assert!(a5 > a1, "{a5} vs {a1}");
        assert!(a5 > 0.85);
    }

    #[test]
    fn em_beats_majority_with_mixed_quality_workers() {
        let ts = truths(300);
        // Half the crowd is near-random; EM should discount them.
        let mut crowd = Crowd::new(20, (0.5, 0.95), 0.05, 7);
        let votes = crowd.ask(&ts, 7);
        let maj = accuracy(&aggregate_majority(&votes, ts.len(), 20, 0.05).answers, &ts);
        let em = accuracy(&aggregate_em(&votes, ts.len(), 20, 0.05, 15).answers, &ts);
        assert!(em >= maj, "em {em} vs majority {maj}");
    }

    #[test]
    fn em_recovers_worker_quality_ordering() {
        let ts = truths(400);
        let mut crowd = Crowd::new(10, (0.55, 0.95), 0.05, 3);
        let votes = crowd.ask(&ts, 5);
        let est = aggregate_em(&votes, ts.len(), 10, 0.05, 20).worker_accuracy;
        // Correlation check: the best true worker should beat the worst.
        let best = (0..10)
            .max_by(|&a, &b| crowd.true_accuracy(a).total_cmp(&crowd.true_accuracy(b)))
            .unwrap();
        let worst = (0..10)
            .min_by(|&a, &b| crowd.true_accuracy(a).total_cmp(&crowd.true_accuracy(b)))
            .unwrap();
        assert!(est[best] > est[worst], "est {est:?}");
    }

    #[test]
    fn cost_accounting() {
        let ts = truths(10);
        let mut crowd = Crowd::new(5, (0.8, 0.8), 0.2, 1);
        let votes = crowd.ask(&ts, 3);
        assert_eq!(votes.len(), 30);
        let agg = aggregate_majority(&votes, 10, 5, 0.2);
        assert!((agg.cost - 6.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_crowd_is_clamped_and_workers_distinct() {
        let ts = vec![true];
        let mut crowd = Crowd::new(3, (0.9, 0.9), 0.1, 5);
        let votes = crowd.ask(&ts, 10);
        assert_eq!(votes.len(), 3);
        let mut workers: Vec<usize> = votes.iter().map(|v| v.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3);
    }

    #[test]
    fn determinism_by_seed() {
        let ts = truths(20);
        let v1 = Crowd::new(5, (0.6, 0.9), 0.1, 9).ask(&ts, 3);
        let v2 = Crowd::new(5, (0.6, 0.9), 0.1, 9).ask(&ts, 3);
        assert_eq!(v1, v2);
    }
}
