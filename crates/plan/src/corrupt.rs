//! Seeded whole-plan defect injection (experiment E12's plan classes).
//!
//! The mapping-level injector in `wrangler-lint::corrupt` corrupts one
//! artifact in isolation; the three classes here corrupt *relationships
//! between operators* that only whole-plan analysis can see — a fuse
//! liveness mask contradicting the output projection, a filter pushed below
//! an uncertified cast, a duplicated map operator. Injection is a pure
//! function of `(plan, class, seed)`, drawing from the same splitmix64
//! stream family as the mapping injector.

use wrangler_lint::{DefectClass, Split};
use wrangler_table::CastSafety;

use crate::ir::{predicate_columns, FilterPlacement, OpKind, PlanIr};

/// Inject `class` into a copy of `ir`. Returns `None` when the plan offers
/// no injection site for the class (e.g. lossy pushdown on a plan with no
/// filter) or when `class` is not a whole-plan class.
pub fn inject_plan_defect(ir: &PlanIr, class: DefectClass, seed: u64) -> Option<PlanIr> {
    let mut rng = Split::new(seed);
    let mut ir = ir.clone();
    match class {
        DefectClass::DeadColumnConsumed => {
            // Mark a column the output projection consumes as dead at fuse.
            let output = match &ir.assemble_node()?.kind {
                OpKind::Assemble { output } => output.clone(),
                _ => return None,
            };
            let sites: Vec<usize> = output
                .iter()
                .filter_map(|name| ir.target_index(name))
                .collect();
            let site = *sites.get(rng.below(sites.len()))?;
            let fuse_id = ir.fuse_node()?.id;
            match &mut ir.nodes[fuse_id].kind {
                OpKind::Fuse { live } if site < live.len() => live[site] = false,
                _ => return None,
            }
            Some(ir)
        }
        DefectClass::LossyPushdown => {
            // Force one source's filter below a binding whose cell-exactness
            // certificate is revoked (the cast degraded to lossy).
            let filter_id = ir.filter_node()?.id;
            let (source, column) = match &ir.nodes[filter_id].kind {
                OpKind::Filter {
                    predicate,
                    placement,
                } => {
                    let columns = predicate_columns(predicate);
                    let (source, _) = *placement.get(rng.below(placement.len()))?;
                    let column = columns.get(rng.below(columns.len()))?.clone();
                    (source, column)
                }
                _ => return None,
            };
            let site = ir.target_index(&column)?;
            let map_id = ir
                .map_nodes()
                .find(|n| n.kind.source() == Some(source))?
                .id;
            match &mut ir.nodes[map_id].kind {
                OpKind::Map {
                    casts, cell_exact, ..
                } if site < cell_exact.len() => {
                    cell_exact[site] = false;
                    casts[site] = CastSafety::Lossy;
                }
                _ => return None,
            }
            match &mut ir.nodes[filter_id].kind {
                OpKind::Filter { placement, .. } => {
                    let slot = placement.iter_mut().find(|(s, _)| *s == source)?;
                    slot.1 = FilterPlacement::Acquire;
                }
                _ => return None,
            }
            Some(ir)
        }
        DefectClass::DuplicateMapWork => {
            // Append a second map operator over the same acquired source.
            let maps: Vec<usize> = ir.map_nodes().map(|n| n.id).collect();
            let site = *maps.get(rng.below(maps.len()))?;
            let mut dup = ir.nodes[site].clone();
            dup.id = ir.nodes.len();
            ir.nodes.push(dup);
            Some(ir)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::fixture::clean_plan;
    use wrangler_lint::Code;

    #[test]
    fn injection_is_deterministic_per_seed() {
        let ir = clean_plan();
        for class in DefectClass::PLAN_CLASSES {
            let a = inject_plan_defect(&ir, class, 11);
            let b = inject_plan_defect(&ir, class, 11);
            assert_eq!(a, b, "{class:?}");
        }
    }

    #[test]
    fn each_plan_class_yields_its_code() {
        let ir = clean_plan();
        let baseline = analyze(&ir).report;
        assert!(baseline.is_clean(), "{baseline:?}");
        for (class, code) in [
            (DefectClass::DeadColumnConsumed, Code::PlanDeadColumn),
            (DefectClass::LossyPushdown, Code::PlanLossyPushdown),
            (DefectClass::DuplicateMapWork, Code::PlanDuplicateMapWork),
        ] {
            let bad = inject_plan_defect(&ir, class, 7).expect("site exists");
            let report = analyze(&bad).report;
            assert!(report.has_code(code), "{class:?}: {report:?}");
            assert!(
                !report.newly_versus(&baseline).is_empty(),
                "{class:?} must add findings over baseline"
            );
        }
    }

    #[test]
    fn mapping_classes_have_no_plan_site() {
        let ir = clean_plan();
        assert!(inject_plan_defect(&ir, DefectClass::DtypeFlip, 3).is_none());
        assert!(inject_plan_defect(&ir, DefectClass::UnbindAll, 3).is_none());
    }
}
