//! `wrangler-plan` — the typed wrangle-plan IR, its static analyzer, and the
//! proof-carrying optimizer.
//!
//! The paper frames wrangling as a cost-aware, automated process; Doan et
//! al.'s system-building agenda (PAPERS.md) sharpens that into *wrangling as
//! a compiled, optimizable program*. This crate is that compiler's middle
//! end:
//!
//! * [`ir`] — a wrangle pass lowered into typed operator nodes
//!   ([`OpNode`]): select → acquire → map → union → ER → fuse → assemble,
//!   each carrying an inferred `(DataType, nullable)` schema, its source
//!   partition, and [`Effects`] determinism annotations derived from the
//!   same `PlanStep` metadata the lint audit consumes;
//! * [`analysis`] — abstract-interpretation dataflow passes over the IR
//!   (schema/nullability flow, column liveness, predicate purity and
//!   pushdown safety, cross-source common-subexpression detection) emitting
//!   stable codes `L301`–`L303` through the `wrangler-lint`
//!   `Report`/`GateMode` machinery, plus the [`Fact`] base rewrites cite;
//! * [`opt`] — the optimizer. Every [`AppliedRewrite`] carries the facts
//!   that justify it; [`verify_rewrites`] re-checks the citations and
//!   [`PlanProgram::compile`] rejects a plan whose ledger contains a forged
//!   or insufficient justification with an `L304` typed diagnostic;
//! * [`corrupt`] — seeded injection of the three whole-plan defect classes
//!   experiment E12 measures ([`inject_plan_defect`]);
//! * [`fixture`] — a small clean plan for tests and experiments.
//!
//! `wrangler-core` lowers its pipeline into this IR (its lowering module is
//! the only place in core allowed to construct [`OpKind`] — `scripts/lint.sh`
//! rule 5) and consults the compiled [`PlanProgram`] for every execution
//! decision the optimizer can influence: filter placement per source, fuse
//! liveness, profile sharing, and the output projection.

pub mod analysis;
pub mod corrupt;
pub mod fixture;
pub mod ir;
pub mod opt;

pub use analysis::{analyze, Analysis, Fact};
pub use corrupt::inject_plan_defect;
pub use ir::{
    fingerprint_map, predicate_columns, rename_columns, ColType, Effects, FilterPlacement, OpKind,
    OpNode, PlanIr,
};
pub use opt::{optimize, verify_rewrites, AppliedRewrite, OptMode, PlanProgram, RewriteKind};

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_lint::Code;

    #[test]
    fn clean_plan_analyzes_clean_with_full_fact_base() {
        let a = analyze(&fixture::clean_plan());
        assert!(a.report.is_clean(), "{:?}", a.report);
        assert!(a.holds(&Fact::NoScanBarrier));
        assert!(a.holds(&Fact::PredicatePure {
            columns: vec!["category".into()]
        }));
        assert!(a.holds(&Fact::DeadAtFuse {
            column: "brand".into()
        }));
        assert!(a.holds(&Fact::CellExactBinding {
            source: 1,
            column: "category".into()
        }));
        assert!(a.holds(&Fact::CommonMapInput {
            sources: vec![0, 1]
        }));
    }

    #[test]
    fn optimizer_rewrites_are_all_verified() {
        let ir = fixture::clean_plan();
        let program = PlanProgram::compile(ir, OptMode::Optimized).expect("clean plan compiles");
        assert!(program.verification.is_clean());
        let kinds: Vec<&str> = program.rewrites.iter().map(|r| r.kind.name()).collect();
        assert!(kinds.contains(&"share-target-profile"), "{kinds:?}");
        assert!(kinds.contains(&"pushdown-filter-to-acquire"), "{kinds:?}");
        assert!(kinds.contains(&"skip-dead-fusion"), "{kinds:?}");
        assert!(program.rewrites.iter().all(|r| !r.justification.is_empty()));
        // Decision API reflects the rewrites.
        assert_eq!(program.placement_for(0), FilterPlacement::Acquire);
        assert!(program.share_target_profile());
        let live = program.live_mask().expect("dead columns exist");
        assert!(!live[2], "brand is dead");
        assert!(live[0], "sku is live");
    }

    #[test]
    fn naive_mode_compiles_without_rewrites() {
        let program =
            PlanProgram::compile(fixture::clean_plan(), OptMode::Naive).expect("compiles");
        assert!(program.rewrites.is_empty());
        assert_eq!(program.ir, program.naive);
        assert_eq!(program.placement_for(0), FilterPlacement::Union);
        assert!(program.live_mask().is_none());
    }

    #[test]
    fn scan_barrier_blocks_early_placements() {
        let mut ir = fixture::clean_plan();
        ir.scan_barrier = true;
        let program = PlanProgram::compile(ir, OptMode::Optimized).expect("compiles");
        assert_eq!(program.placement_for(0), FilterPlacement::Union);
        assert_eq!(program.placement_for(1), FilterPlacement::Union);
        assert!(program
            .rewrites
            .iter()
            .any(|r| r.kind == RewriteKind::FuseFilterIntoUnion));
        // Dead-column elimination is barrier-independent.
        assert!(program.live_mask().is_some());
    }

    #[test]
    fn forged_justification_is_rejected_with_l304() {
        let ir = fixture::clean_plan();
        let analysis = analyze(&ir);
        // Cite a fact the analysis never established.
        let forged = AppliedRewrite {
            kind: RewriteKind::PushdownFilterToAcquire { source: 0 },
            justification: vec![
                Fact::PredicatePure {
                    columns: vec!["category".into()],
                },
                Fact::NoScanBarrier,
                Fact::CellExactBinding {
                    source: 7,
                    column: "category".into(),
                },
            ],
            description: "forged".into(),
        };
        let err = PlanProgram::compile_with_rewrites(ir.clone(), analysis.ir.clone(), vec![forged])
            .expect_err("forged citation must be rejected");
        assert!(err.has_code(Code::PlanUnjustifiedRewrite), "{err:?}");

        // A true but insufficient citation is also rejected.
        let insufficient = AppliedRewrite {
            kind: RewriteKind::PushdownFilterToAcquire { source: 0 },
            justification: vec![Fact::NoScanBarrier],
            description: "missing purity and cell-exactness".into(),
        };
        let err = PlanProgram::compile_with_rewrites(ir, analysis.ir.clone(), vec![insufficient])
            .expect_err("insufficient citation must be rejected");
        assert!(err.has_code(Code::PlanUnjustifiedRewrite), "{err:?}");
    }

    #[test]
    fn empty_ledger_always_verifies() {
        let ir = fixture::clean_plan();
        let analysis = analyze(&ir);
        let program = PlanProgram::compile_with_rewrites(ir, analysis.ir.clone(), Vec::new())
            .expect("empty ledger is trivially justified");
        assert!(program.verification.is_clean());
    }

    #[test]
    fn analysis_is_deterministic_and_idempotent_on_fixture() {
        let ir = fixture::clean_plan();
        let a = analyze(&ir);
        let b = analyze(&ir);
        assert_eq!(a, b);
        let again = analyze(&a.ir);
        assert_eq!(again, a);
    }
}
