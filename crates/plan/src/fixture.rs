//! A small, fully clean plan fixture shared by this crate's tests, the
//! proptests, and experiment code that needs an IR without standing up a
//! whole wrangling session.

use wrangler_table::{CastSafety, DataType, Expr};

use crate::ir::{fingerprint_map, ColType, Effects, OpKind, OpNode, PlanIr};
use crate::FilterPlacement;

/// A clean two-source plan: drifted source schemas mapped into a five-column
/// target, a pure category filter, ER over `sku`/`name`, and a three-column
/// output projection. Analysis over it is clean and every optimizer rewrite
/// has a site.
pub fn clean_plan() -> PlanIr {
    let target = vec![
        ColType::new("sku", DataType::Str, false),
        ColType::new("name", DataType::Str, false),
        ColType::new("brand", DataType::Str, true),
        ColType::new("category", DataType::Str, false),
        ColType::new("price", DataType::Float, true),
    ];
    let source_schema = |prefix: &str| {
        vec![
            ColType::new(format!("{prefix}_code"), DataType::Str, false),
            ColType::new(format!("{prefix}_title"), DataType::Str, false),
            ColType::new(format!("{prefix}_cat"), DataType::Str, false),
            ColType::new(format!("{prefix}_cost"), DataType::Float, true),
        ]
    };
    // target ← source: sku←0, name←1, brand unbound, category←2, price←3.
    let bindings = vec![Some(0), Some(1), None, Some(2), Some(3)];
    let casts = vec![CastSafety::Lossless; 5];
    let cell_exact = vec![true, true, false, true, true];
    let det = Effects::default();
    let pooled = Effects {
        parallel: true,
        merge_ordered: true,
        ..Effects::default()
    };
    let hashed = Effects {
        hash_iteration: true,
        order_normalized: true,
        ..Effects::default()
    };

    let mut nodes = Vec::new();
    nodes.push(OpNode {
        id: 0,
        kind: OpKind::Select {
            strategy: "greedy-utility".into(),
        },
        inputs: vec![],
        schema: vec![],
        effects: det,
    });
    let mut map_ids = Vec::new();
    for source in 0..2usize {
        let schema = source_schema(&format!("s{source}"));
        let acquire_id = nodes.len();
        nodes.push(OpNode {
            id: acquire_id,
            kind: OpKind::Acquire {
                source,
                name: format!("s{source}"),
            },
            inputs: vec![0],
            schema: schema.clone(),
            effects: det,
        });
        let map_id = nodes.len();
        nodes.push(OpNode {
            id: map_id,
            kind: OpKind::Map {
                source,
                bindings: bindings.clone(),
                casts: casts.clone(),
                cell_exact: cell_exact.clone(),
                fingerprint: fingerprint_map(&schema, &bindings),
            },
            inputs: vec![acquire_id],
            schema: vec![],
            effects: pooled,
        });
        map_ids.push(map_id);
    }
    let filter_id = nodes.len();
    nodes.push(OpNode {
        id: filter_id,
        kind: OpKind::Filter {
            predicate: Expr::col("category").eq(Expr::lit("home")),
            placement: vec![(0, FilterPlacement::Union), (1, FilterPlacement::Union)],
        },
        inputs: map_ids.clone(),
        schema: vec![],
        effects: det,
    });
    let union_id = nodes.len();
    nodes.push(OpNode {
        id: union_id,
        kind: OpKind::Union { arity: 2 },
        inputs: vec![filter_id],
        schema: vec![],
        effects: det,
    });
    let er_id = nodes.len();
    nodes.push(OpNode {
        id: er_id,
        kind: OpKind::Er {
            columns: vec!["sku".into(), "name".into()],
            threshold: 0.8,
        },
        inputs: vec![union_id],
        schema: vec![],
        effects: hashed,
    });
    let fuse_id = nodes.len();
    nodes.push(OpNode {
        id: fuse_id,
        kind: OpKind::Fuse {
            live: vec![true; 5],
        },
        inputs: vec![er_id],
        schema: vec![],
        effects: hashed,
    });
    nodes.push(OpNode {
        id: fuse_id + 1,
        kind: OpKind::Assemble {
            output: vec!["sku".into(), "name".into(), "price".into()],
        },
        inputs: vec![fuse_id],
        schema: vec![],
        effects: det,
    });
    PlanIr {
        target,
        nodes,
        scan_barrier: false,
    }
}
