//! Abstract-interpretation dataflow passes over the plan IR.
//!
//! [`analyze`] runs four passes and returns an [`Analysis`]: the IR with
//! every node's typed schema filled in (schema/nullability flow), the set of
//! [`Fact`]s the optimizer may cite as rewrite justifications, and a
//! canonical lint [`Report`] of whole-plan findings (codes `L301`–`L303`,
//! plus re-audited per-node determinism effects and the predicate
//! typecheck). The passes are pure functions of the IR: two runs yield equal
//! output, and re-analyzing an analyzed plan is the identity (the proptests
//! in `tests/` pin both laws).

use wrangler_lint::{audit_steps, check_predicate, Code, Diagnostic, Locus, Report};
use wrangler_table::CastSafety;

use crate::ir::{predicate_columns, ColType, OpKind, OpNode, PlanIr};

/// A proposition established by an analysis pass. Facts are the currency of
/// the optimizer: every rewrite must cite the facts that make it sound, and
/// the verifier checks the citations against the analysis output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fact {
    /// The filter predicate typechecks to boolean over the target schema and
    /// every referenced column resolves; `columns` are its references,
    /// sorted. Evaluating it cannot error and reads nothing but `columns`.
    PredicatePure {
        /// Referenced target columns, sorted and deduplicated.
        columns: Vec<String>,
    },
    /// For `source`, mapping normalization is the identity on every cell the
    /// source holds in the binding of `column`: the raw and mapped values
    /// are bit-identical, so a predicate over the raw column returns the
    /// same verdict as over the mapped one.
    CellExactBinding {
        /// Registry index of the source.
        source: usize,
        /// Target column name.
        column: String,
    },
    /// No containment scan or budget runs between map and union, so changing
    /// the row set ahead of the union firewall cannot alter quarantine or
    /// truncation decisions.
    NoScanBarrier,
    /// `column` is not consumed by any operator after fuse: its fused value
    /// never reaches the output.
    DeadAtFuse {
        /// Target column name.
        column: String,
    },
    /// At least two map operators align their sources against one identical
    /// target sample, so target-side profiling work is common across them.
    CommonMapInput {
        /// Registry indices of the sources sharing the input, sorted.
        sources: Vec<usize>,
    },
    /// `source`'s pre-union operator chain is self-contained: its union
    /// block is `Acquire(source) → Map(source)` — optionally through a
    /// *pure* row-wise filter, which distributes over the union — with no
    /// other source's data on the path. The block is therefore a pure
    /// function of (payload, mapping, compiled program, containment
    /// policy): the incremental engine must hold this fact before reusing
    /// a memoized block for an unchanged source (its dirty-partition
    /// analysis proof obligation).
    PartitionIsolated {
        /// Registry index of the source.
        source: usize,
    },
}

impl Fact {
    /// Compact display form, recorded in provenance next to the rewrite it
    /// justifies.
    pub fn render(&self) -> String {
        match self {
            Fact::PredicatePure { columns } => format!("predicate-pure({})", columns.join(",")),
            Fact::CellExactBinding { source, column } => {
                format!("cell-exact(src{source},{column})")
            }
            Fact::NoScanBarrier => "no-scan-barrier".to_string(),
            Fact::DeadAtFuse { column } => format!("dead-at-fuse({column})"),
            Fact::CommonMapInput { sources } => {
                let s: Vec<String> = sources.iter().map(|s| format!("src{s}")).collect();
                format!("common-map-input({})", s.join(","))
            }
            Fact::PartitionIsolated { source } => format!("partition-isolated(src{source})"),
        }
    }
}

/// The outcome of analyzing one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The IR with every node's schema annotation filled in.
    pub ir: PlanIr,
    /// Established facts, sorted and deduplicated.
    pub facts: Vec<Fact>,
    /// Whole-plan findings, canonical order.
    pub report: Report,
}

impl Analysis {
    /// True if `fact` was established.
    pub fn holds(&self, fact: &Fact) -> bool {
        self.facts.binary_search(fact).is_ok()
    }
}

/// Run every analysis pass over `ir`.
pub fn analyze(ir: &PlanIr) -> Analysis {
    let mut ir = ir.clone();
    let mut report = Report::new();
    let mut facts = Vec::new();

    schema_flow(&mut ir);
    effects_audit(&ir, &mut report);
    liveness(&ir, &mut facts, &mut report);
    purity_and_pushdown(&ir, &mut facts, &mut report);
    duplicate_maps(&ir, &mut facts, &mut report);
    partition_isolation(&ir, &mut facts);

    if !ir.scan_barrier {
        facts.push(Fact::NoScanBarrier);
    }
    facts.sort();
    facts.dedup();
    report.canonicalize();
    Analysis { ir, facts, report }
}

/// Pass 1 — schema/nullability flow. `Acquire` schemas are ground truth from
/// lowering; every other node's schema is recomputed from its inputs, with
/// nullability widened where mapping can introduce nulls (unbound fields,
/// lossy casts whose normalization can fail to parse).
fn schema_flow(ir: &mut PlanIr) {
    let target = ir.target.clone();
    for i in 0..ir.nodes.len() {
        let inputs: Vec<Vec<ColType>> = ir.nodes[i]
            .inputs
            .clone()
            .into_iter()
            .map(|j| ir.nodes[j].schema.clone())
            .collect();
        let node = &mut ir.nodes[i];
        match &node.kind {
            OpKind::Select { .. } => node.schema = Vec::new(),
            OpKind::Acquire { .. } => {} // ground truth, recorded at lowering
            OpKind::Map {
                bindings, casts, ..
            } => {
                let input = inputs.first().cloned().unwrap_or_default();
                node.schema = target
                    .iter()
                    .enumerate()
                    .map(|(j, t)| {
                        let nullable = match bindings.get(j).copied().flatten() {
                            None => true,
                            Some(s) => {
                                let src_nullable = input.get(s).map(|c| c.nullable).unwrap_or(true);
                                src_nullable
                                    || casts.get(j).copied().unwrap_or(CastSafety::Lossy)
                                        != CastSafety::Lossless
                            }
                        };
                        ColType::new(&t.name, t.dtype, nullable)
                    })
                    .collect();
            }
            OpKind::Filter { .. } | OpKind::Er { .. } | OpKind::Fuse { .. } => {
                node.schema = inputs.first().cloned().unwrap_or_default();
            }
            OpKind::Union { .. } => {
                // Column-wise nullability join over every mapped input.
                node.schema = target
                    .iter()
                    .enumerate()
                    .map(|(j, t)| {
                        let nullable = inputs.is_empty()
                            || inputs
                                .iter()
                                .any(|inp| inp.get(j).map(|c| c.nullable).unwrap_or(true));
                        ColType::new(&t.name, t.dtype, nullable)
                    })
                    .collect();
            }
            OpKind::Assemble { output } => {
                let input = inputs.first().cloned().unwrap_or_default();
                let mut out: Vec<ColType> = output
                    .iter()
                    .filter_map(|name| input.iter().find(|c| &c.name == name).cloned())
                    .collect();
                out.push(ColType::new(
                    "_confidence",
                    wrangler_table::DataType::Float,
                    false,
                ));
                node.schema = out;
            }
        }
    }
}

/// Pass 2 — re-audit each node's effect annotations through the existing
/// determinism audit (L201–L203), so IR-level effects and the described plan
/// cannot drift apart silently.
fn effects_audit(ir: &PlanIr, report: &mut Report) {
    let steps: Vec<_> = ir
        .nodes
        .iter()
        .map(|n| n.effects.to_step(&n.locus_name()))
        .collect();
    report.merge(audit_steps(&steps));
}

/// Pass 3 — backwards column liveness from the output projection. Emits a
/// [`Fact::DeadAtFuse`] per unprojected target column, and L301 when a
/// column some downstream operator consumes is marked dead at fuse.
fn liveness(ir: &PlanIr, facts: &mut Vec<Fact>, report: &mut Report) {
    let Some(assemble) = ir.assemble_node() else {
        return;
    };
    let OpKind::Assemble { output } = &assemble.kind else {
        return;
    };
    let assemble_locus = Locus::Step(assemble.locus_name());
    // Columns consumed after fuse: the output projection.
    for c in &ir.target {
        if !output.contains(&c.name) {
            facts.push(Fact::DeadAtFuse {
                column: c.name.clone(),
            });
        }
    }
    for name in output {
        if ir.target_index(name).is_none() {
            report.push(Diagnostic::new(
                Code::PlanDeadColumn,
                assemble_locus.clone(),
                format!("output column `{name}` is not produced by the plan"),
            ));
        }
    }
    if let Some(fuse) = ir.fuse_node() {
        let OpKind::Fuse { live } = &fuse.kind else {
            return;
        };
        for (j, c) in ir.target.iter().enumerate() {
            let consumed = output.contains(&c.name);
            let alive = live.get(j).copied().unwrap_or(false);
            if consumed && !alive {
                report.push(Diagnostic::new(
                    Code::PlanDeadColumn,
                    Locus::Step(fuse.locus_name()),
                    format!(
                        "column `{}` is marked dead at fuse but is consumed by the output \
                         projection",
                        c.name
                    ),
                ));
            }
        }
    }
}

/// Pass 4 — predicate purity and pushdown safety. Typechecks the filter
/// predicate over the target schema ([`Fact::PredicatePure`] when clean),
/// emits [`Fact::CellExactBinding`] for every certified binding, and L302
/// for any filter placement ahead of a barrier or lossy cast it cannot
/// prove safe.
fn purity_and_pushdown(ir: &PlanIr, facts: &mut Vec<Fact>, report: &mut Report) {
    let Some(filter) = ir.filter_node() else {
        // Cell-exactness facts still hold without a filter; record them so
        // forged-rewrite tests see a fully populated fact base.
        collect_cell_exact(ir, facts);
        return;
    };
    let OpKind::Filter {
        predicate,
        placement,
    } = &filter.kind
    else {
        return;
    };
    let columns = predicate_columns(predicate);
    let pure = match ColType::to_schema(&ir.target) {
        Some(schema) => {
            let pred_report = check_predicate(predicate, &schema);
            let clean = pred_report.is_clean();
            report.merge(pred_report);
            clean && columns.iter().all(|c| ir.target_index(c).is_some())
        }
        None => false,
    };
    if pure {
        facts.push(Fact::PredicatePure {
            columns: columns.clone(),
        });
    }
    collect_cell_exact(ir, facts);

    for (source, place) in placement {
        let early = matches!(
            place,
            crate::ir::FilterPlacement::PostMap | crate::ir::FilterPlacement::Acquire
        );
        if !early {
            continue;
        }
        let locus = Locus::Step(filter.locus_name());
        if !pure {
            report.push(Diagnostic::new(
                Code::PlanLossyPushdown,
                locus.clone(),
                format!(
                    "filter for src{source} is placed at {} but the predicate is not proven pure",
                    place.name()
                ),
            ));
            continue;
        }
        if ir.scan_barrier {
            report.push(Diagnostic::new(
                Code::PlanLossyPushdown,
                locus.clone(),
                format!(
                    "filter for src{source} is placed at {} ahead of the containment scan \
                     barrier: early row drops would change quarantine decisions",
                    place.name()
                ),
            ));
        }
        if matches!(place, crate::ir::FilterPlacement::Acquire) {
            for column in &columns {
                let fact = Fact::CellExactBinding {
                    source: *source,
                    column: column.clone(),
                };
                if !facts.contains(&fact) {
                    report.push(Diagnostic::new(
                        Code::PlanLossyPushdown,
                        locus.clone(),
                        format!(
                            "filter for src{source} is pushed to acquisition across a lossy or \
                             uncertified binding of `{column}`: raw and mapped verdicts can \
                             diverge"
                        ),
                    ));
                }
            }
        }
    }
}

/// Record a [`Fact::CellExactBinding`] for every map binding the lowering
/// certified.
fn collect_cell_exact(ir: &PlanIr, facts: &mut Vec<Fact>) {
    for node in ir.map_nodes() {
        let OpKind::Map {
            source, cell_exact, ..
        } = &node.kind
        else {
            continue;
        };
        for (j, exact) in cell_exact.iter().enumerate() {
            if *exact {
                if let Some(c) = ir.target.get(j) {
                    facts.push(Fact::CellExactBinding {
                        source: *source,
                        column: c.name.clone(),
                    });
                }
            }
        }
    }
}

/// Pass 5 — cross-source common-subexpression detection. Two map nodes over
/// the same source with equal fingerprints duplicate work (L303); two or
/// more map nodes aligning against the shared target sample make its
/// profiling a common input ([`Fact::CommonMapInput`]).
fn duplicate_maps(ir: &PlanIr, facts: &mut Vec<Fact>, report: &mut Report) {
    let maps: Vec<&OpNode> = ir.map_nodes().collect();
    let mut sources: Vec<usize> = Vec::new();
    for (i, a) in maps.iter().enumerate() {
        let OpKind::Map {
            source: sa,
            fingerprint: fa,
            ..
        } = &a.kind
        else {
            continue;
        };
        sources.push(*sa);
        for b in maps.iter().skip(i + 1) {
            let OpKind::Map {
                source: sb,
                fingerprint: fb,
                ..
            } = &b.kind
            else {
                continue;
            };
            if sa == sb && fa == fb {
                report.push(Diagnostic::new(
                    Code::PlanDuplicateMapWork,
                    Locus::Step(b.locus_name()),
                    format!(
                        "map of src{sb} duplicates the work of {} (same source, same \
                         schema fingerprint)",
                        a.locus_name()
                    ),
                ));
            }
        }
    }
    sources.sort_unstable();
    sources.dedup();
    if sources.len() >= 2 {
        facts.push(Fact::CommonMapInput { sources });
    }
}

/// Pass 6 — dirty-partition analysis. Establishes
/// [`Fact::PartitionIsolated`] per source whose union block is provably
/// self-contained: the union input chain for that source is
/// `Acquire(s) → Map(s)`, optionally through a single shared [`OpKind::
/// Filter`] node whose predicate carries [`Fact::PredicatePure`] (a pure
/// row-wise filter distributes over the union, so filtering the
/// concatenation equals concatenating the filtered blocks). Any other
/// shape — a multi-source operator ahead of the union, or an impure
/// filter — yields no fact, and the incremental engine recomputes that
/// source's block unconditionally.
fn partition_isolation(ir: &PlanIr, facts: &mut Vec<Fact>) {
    let Some(union_node) = ir
        .nodes
        .iter()
        .find(|n| matches!(n.kind, OpKind::Union { .. }))
    else {
        return;
    };
    let predicate_pure = facts
        .iter()
        .any(|f| matches!(f, Fact::PredicatePure { .. }));
    // Union inputs are either the Map nodes directly or one Filter node
    // fanning in every Map.
    let mut map_ids: Vec<usize> = Vec::new();
    for &inp in &union_node.inputs {
        match &ir.nodes[inp].kind {
            OpKind::Map { .. } => map_ids.push(inp),
            OpKind::Filter { .. } => {
                if !predicate_pure {
                    return;
                }
                map_ids.extend(ir.nodes[inp].inputs.iter().copied());
            }
            _ => return,
        }
    }
    for m in map_ids {
        let node = &ir.nodes[m];
        let OpKind::Map { source, .. } = &node.kind else {
            continue;
        };
        let upstream_ok = node.inputs.len() == 1
            && matches!(
                &ir.nodes[node.inputs[0]].kind,
                OpKind::Acquire { source: s, .. } if s == source
            );
        if upstream_ok {
            facts.push(Fact::PartitionIsolated { source: *source });
        }
    }
}
