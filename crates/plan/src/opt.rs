//! The proof-carrying plan optimizer.
//!
//! Every rewrite the optimizer applies is an [`AppliedRewrite`]: the rewrite
//! kind plus the [`Fact`]s that justify it. [`verify_rewrites`] re-checks
//! each citation against the analysis — the fact must actually have been
//! established, and the cited set must be *sufficient* for the rewrite kind
//! — emitting `L304` for anything forged or missing. [`PlanProgram::compile`]
//! refuses to produce an executable program unless verification is clean, so
//! an unjustified rewrite is rejected at plan-build time with a typed
//! diagnostic rather than silently executed.

use wrangler_lint::{Code, Diagnostic, Locus, Report};
use wrangler_table::Expr;

use crate::analysis::{analyze, Analysis, Fact};
use crate::ir::{FilterPlacement, OpKind, PlanIr};

/// The rewrites this optimizer knows, ordered by where they act in the plan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum RewriteKind {
    /// Hoist target-sample column profiling out of the per-source map
    /// generation loop (cross-source CSE of the alignment input).
    ShareTargetProfile,
    /// Push the row filter into acquisition for one source: raw rows are
    /// filtered (over renamed columns) before mapping runs at all.
    PushdownFilterToAcquire {
        /// Registry index of the source.
        source: usize,
    },
    /// Evaluate the row filter over mapped rows before the union firewall.
    PushdownFilterPostMap {
        /// Registry index of the source.
        source: usize,
    },
    /// Fuse the row filter into the union loop (map+union stage fusion)
    /// instead of a separate pass over the materialized union.
    FuseFilterIntoUnion,
    /// Skip fusing a column no downstream operator consumes.
    SkipDeadFusion {
        /// Target column name.
        column: String,
    },
}

impl RewriteKind {
    /// Stable rewrite name.
    pub fn name(&self) -> &'static str {
        match self {
            RewriteKind::ShareTargetProfile => "share-target-profile",
            RewriteKind::PushdownFilterToAcquire { .. } => "pushdown-filter-to-acquire",
            RewriteKind::PushdownFilterPostMap { .. } => "pushdown-filter-post-map",
            RewriteKind::FuseFilterIntoUnion => "fuse-filter-into-union",
            RewriteKind::SkipDeadFusion { .. } => "skip-dead-fusion",
        }
    }

    /// What the rewrite acts on, for provenance.
    pub fn target(&self) -> String {
        match self {
            RewriteKind::ShareTargetProfile => "map-generation".to_string(),
            RewriteKind::PushdownFilterToAcquire { source }
            | RewriteKind::PushdownFilterPostMap { source } => format!("src{source}"),
            RewriteKind::FuseFilterIntoUnion => "union".to_string(),
            RewriteKind::SkipDeadFusion { column } => format!("column:{column}"),
        }
    }
}

/// One applied rewrite with its proof.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedRewrite {
    /// What was rewritten.
    pub kind: RewriteKind,
    /// The analysis facts cited as justification.
    pub justification: Vec<Fact>,
    /// Human-readable account, recorded in provenance.
    pub description: String,
}

impl AppliedRewrite {
    /// Render the justification for provenance, `;`-joined.
    pub fn justification_rendered(&self) -> String {
        let parts: Vec<String> = self.justification.iter().map(Fact::render).collect();
        parts.join("; ")
    }
}

/// Apply every rewrite the analysis justifies. Returns the optimized IR plus
/// the applied rewrites with their proofs. A plan whose analysis has
/// `Error`-severity findings is left untouched: broken plans are not
/// optimized, they are reported.
pub fn optimize(analysis: &Analysis) -> (PlanIr, Vec<AppliedRewrite>) {
    let mut ir = analysis.ir.clone();
    let mut rewrites = Vec::new();
    if !analysis.report.is_clean() {
        return (ir, rewrites);
    }

    // Cross-source CSE: share the target-side profiling work.
    if let Some(fact @ Fact::CommonMapInput { sources }) = analysis
        .facts
        .iter()
        .find(|f| matches!(f, Fact::CommonMapInput { sources } if sources.len() >= 2))
    {
        rewrites.push(AppliedRewrite {
            kind: RewriteKind::ShareTargetProfile,
            justification: vec![fact.clone()],
            description: format!(
                "profile the target sample once and share it across {} map generations",
                sources.len()
            ),
        });
    }

    // Filter placement: per source, as early as the facts allow.
    let pure = analysis
        .facts
        .iter()
        .find(|f| matches!(f, Fact::PredicatePure { .. }))
        .cloned();
    let filter_id = ir.filter_node().map(|n| n.id);
    if let (Some(pure_fact), Some(filter_id)) = (pure, filter_id) {
        let columns = match &pure_fact {
            Fact::PredicatePure { columns } => columns.clone(),
            _ => Vec::new(),
        };
        let no_barrier = analysis.holds(&Fact::NoScanBarrier);
        let mut fused_union = false;
        if let OpKind::Filter { placement, .. } = &mut ir.nodes[filter_id].kind {
            for (source, place) in placement.iter_mut() {
                let exact: Vec<Fact> = columns
                    .iter()
                    .map(|c| Fact::CellExactBinding {
                        source: *source,
                        column: c.clone(),
                    })
                    .collect();
                if no_barrier && exact.iter().all(|f| analysis.holds(f)) {
                    *place = FilterPlacement::Acquire;
                    let mut justification = vec![pure_fact.clone(), Fact::NoScanBarrier];
                    justification.extend(exact);
                    rewrites.push(AppliedRewrite {
                        kind: RewriteKind::PushdownFilterToAcquire { source: *source },
                        justification,
                        description: format!(
                            "filter src{source} raw rows before mapping (all referenced \
                             bindings cell-exact, no scan barrier)"
                        ),
                    });
                } else if no_barrier {
                    *place = FilterPlacement::PostMap;
                    rewrites.push(AppliedRewrite {
                        kind: RewriteKind::PushdownFilterPostMap { source: *source },
                        justification: vec![pure_fact.clone(), Fact::NoScanBarrier],
                        description: format!(
                            "filter src{source} mapped rows before the union (no scan barrier)"
                        ),
                    });
                } else {
                    *place = FilterPlacement::Union;
                    fused_union = true;
                }
            }
        }
        if fused_union {
            rewrites.push(AppliedRewrite {
                kind: RewriteKind::FuseFilterIntoUnion,
                justification: vec![pure_fact.clone()],
                description: "evaluate the filter inside the union loop, after the per-row \
                              poison check, instead of a separate pass over the materialized \
                              union"
                    .to_string(),
            });
        }
    }

    // Dead-column elimination at fuse.
    let dead: Vec<Fact> = analysis
        .facts
        .iter()
        .filter(|f| matches!(f, Fact::DeadAtFuse { .. }))
        .cloned()
        .collect();
    if let Some(fuse_id) = ir.fuse_node().map(|n| n.id) {
        let target = ir.target.clone();
        if let OpKind::Fuse { live } = &mut ir.nodes[fuse_id].kind {
            for fact in dead {
                let Fact::DeadAtFuse { column } = &fact else {
                    continue;
                };
                if let Some(j) = target.iter().position(|c| &c.name == column) {
                    if live.get(j).copied().unwrap_or(false) {
                        live[j] = false;
                        rewrites.push(AppliedRewrite {
                            kind: RewriteKind::SkipDeadFusion {
                                column: column.clone(),
                            },
                            justification: vec![fact.clone()],
                            description: format!(
                                "skip fusing `{column}`: no operator after fuse consumes it \
                                 (claims are still collected, so trust estimation is unchanged)"
                            ),
                        });
                    }
                }
            }
        }
    }

    (ir, rewrites)
}

/// Check every rewrite's citations against the analysis: each cited fact
/// must have been established, and the cited set must suffice for the
/// rewrite kind. Violations are `L304` errors.
pub fn verify_rewrites(analysis: &Analysis, rewrites: &[AppliedRewrite]) -> Report {
    let mut report = Report::new();
    for rw in rewrites {
        let locus = Locus::Step(format!("rewrite:{}", rw.kind.name()));
        for fact in &rw.justification {
            if !analysis.holds(fact) {
                report.push(Diagnostic::new(
                    Code::PlanUnjustifiedRewrite,
                    locus.clone(),
                    format!(
                        "rewrite `{}` cites {}, which the analysis did not establish",
                        rw.kind.name(),
                        fact.render()
                    ),
                ));
            }
        }
        let missing = |report: &mut Report, what: &str| {
            report.push(Diagnostic::new(
                Code::PlanUnjustifiedRewrite,
                locus.clone(),
                format!(
                    "rewrite `{}` does not cite {what}, which its soundness requires",
                    rw.kind.name()
                ),
            ));
        };
        let cites_pure = rw
            .justification
            .iter()
            .find(|f| matches!(f, Fact::PredicatePure { .. }));
        let cites_barrier = rw.justification.contains(&Fact::NoScanBarrier);
        match &rw.kind {
            RewriteKind::ShareTargetProfile => {
                let ok = rw.justification.iter().any(
                    |f| matches!(f, Fact::CommonMapInput { sources } if sources.len() >= 2),
                );
                if !ok {
                    missing(&mut report, "a common map input across at least two sources");
                }
            }
            RewriteKind::FuseFilterIntoUnion => {
                if cites_pure.is_none() {
                    missing(&mut report, "predicate purity");
                }
            }
            RewriteKind::PushdownFilterPostMap { .. } => {
                if cites_pure.is_none() {
                    missing(&mut report, "predicate purity");
                }
                if !cites_barrier {
                    missing(&mut report, "the absence of a scan barrier");
                }
            }
            RewriteKind::PushdownFilterToAcquire { source } => {
                if !cites_barrier {
                    missing(&mut report, "the absence of a scan barrier");
                }
                match cites_pure {
                    None => missing(&mut report, "predicate purity"),
                    Some(Fact::PredicatePure { columns }) => {
                        for c in columns {
                            let fact = Fact::CellExactBinding {
                                source: *source,
                                column: c.clone(),
                            };
                            if !rw.justification.contains(&fact) {
                                missing(
                                    &mut report,
                                    &format!("a cell-exact binding of `{c}` for src{source}"),
                                );
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
            RewriteKind::SkipDeadFusion { column } => {
                let fact = Fact::DeadAtFuse {
                    column: column.clone(),
                };
                if !rw.justification.contains(&fact) {
                    missing(&mut report, &format!("liveness death of `{column}` at fuse"));
                }
            }
        }
    }
    report.canonicalize();
    report
}

/// Whether compilation applies the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptMode {
    /// Execute the lowered plan as-is.
    Naive,
    /// Apply every justified rewrite (the default).
    #[default]
    Optimized,
}

/// A compiled wrangle plan: the analyzed naive IR, the executed (possibly
/// optimized) IR, and the verified rewrite ledger. The session consults this
/// — never the raw IR — for every decision the optimizer can influence.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProgram {
    /// The analyzed, unoptimized IR.
    pub naive: PlanIr,
    /// The IR that executes.
    pub ir: PlanIr,
    /// Facts established by analysis.
    pub facts: Vec<Fact>,
    /// Whole-plan analysis findings (feeds the pre-flight gate).
    pub report: Report,
    /// Applied rewrites with their proofs.
    pub rewrites: Vec<AppliedRewrite>,
    /// The (clean) verification report of the rewrite citations.
    pub verification: Report,
}

impl PlanProgram {
    /// Analyze, optionally optimize, and verify. `Err` carries the typed
    /// verification report when any rewrite's justification is missing or
    /// false — the plan-build-time rejection the optimizer contract demands.
    pub fn compile(ir: PlanIr, mode: OptMode) -> Result<PlanProgram, Report> {
        let analysis = analyze(&ir);
        let (opt_ir, rewrites) = match mode {
            OptMode::Naive => (analysis.ir.clone(), Vec::new()),
            OptMode::Optimized => optimize(&analysis),
        };
        PlanProgram::from_parts(analysis, opt_ir, rewrites)
    }

    /// Compile with a caller-supplied rewrite ledger (and the IR those
    /// rewrites claim to produce). This is the path defect experiments and
    /// forged-justification tests use; `compile` itself always goes through
    /// [`optimize`].
    pub fn compile_with_rewrites(
        ir: PlanIr,
        opt_ir: PlanIr,
        rewrites: Vec<AppliedRewrite>,
    ) -> Result<PlanProgram, Report> {
        let analysis = analyze(&ir);
        PlanProgram::from_parts(analysis, opt_ir, rewrites)
    }

    fn from_parts(
        analysis: Analysis,
        opt_ir: PlanIr,
        rewrites: Vec<AppliedRewrite>,
    ) -> Result<PlanProgram, Report> {
        let verification = verify_rewrites(&analysis, &rewrites);
        if !verification.is_clean() {
            return Err(verification);
        }
        Ok(PlanProgram {
            naive: analysis.ir.clone(),
            ir: opt_ir,
            facts: analysis.facts,
            report: analysis.report,
            rewrites,
            verification,
        })
    }

    /// Stable fingerprint of the compiled program: a content hash over the
    /// executing IR (nodes, kinds, typed schemas, filter placements, effect
    /// annotations) and the applied-rewrite ledger, via the canonical wire
    /// hasher. Two compilations that would execute identically fingerprint
    /// identically across processes; any structural change — a different
    /// source set, binding, placement, threshold or rewrite — changes it.
    /// The checkpoint store mixes this into every stage content key, so a
    /// plan change invalidates all stage records at once.
    pub fn fingerprint(&self) -> u64 {
        let mut h = wrangler_table::wire::Hasher64::new();
        // The IR types are plain data with derived `Debug`; the rendering is
        // a deterministic, total serialization of the structure, and the
        // hasher collapses it to a key. (f64 fields like thresholds render
        // with full precision under `{:?}`.)
        h.write_str("plan-ir").write_str(&format!("{:?}", self.ir));
        h.write_str("scan-barrier").write_u64(u64::from(self.ir.scan_barrier));
        h.write_str("rewrites");
        for rw in &self.rewrites {
            h.write_str(&format!("{rw:?}"));
        }
        h.finish()
    }

    /// True if analysis established `fact` for this program (the facts are
    /// kept sorted). Runtime reuse decisions — like the incremental
    /// engine's per-source block memoization — cite facts through this, so
    /// a reuse without a verified justification is structurally impossible.
    pub fn holds(&self, fact: &Fact) -> bool {
        self.facts.binary_search(fact).is_ok()
    }

    /// The row filter predicate, if the plan has one.
    pub fn predicate(&self) -> Option<&Expr> {
        self.ir.filter_node().and_then(|n| match &n.kind {
            OpKind::Filter { predicate, .. } => Some(predicate),
            _ => None,
        })
    }

    /// Where the filter runs for `source` (`Union` when the plan has no
    /// placement entry: the always-legal default).
    pub fn placement_for(&self, source: usize) -> FilterPlacement {
        self.ir
            .filter_node()
            .and_then(|n| match &n.kind {
                OpKind::Filter { placement, .. } => placement
                    .iter()
                    .find(|(s, _)| *s == source)
                    .map(|(_, p)| *p),
                _ => None,
            })
            .unwrap_or(FilterPlacement::Union)
    }

    /// Per-target-attribute fuse liveness; `None` when every column is live.
    pub fn live_mask(&self) -> Option<&[bool]> {
        let live = self.ir.fuse_node().and_then(|n| match &n.kind {
            OpKind::Fuse { live } => Some(live.as_slice()),
            _ => None,
        })?;
        if live.iter().all(|&l| l) {
            None
        } else {
            Some(live)
        }
    }

    /// True when target-sample profiling is hoisted out of map generation.
    pub fn share_target_profile(&self) -> bool {
        self.rewrites
            .iter()
            .any(|r| r.kind == RewriteKind::ShareTargetProfile)
    }

    /// The output projection, in target order.
    pub fn output_columns(&self) -> Option<Vec<String>> {
        self.ir.assemble_node().and_then(|n| match &n.kind {
            OpKind::Assemble { output } => Some(output.clone()),
            _ => None,
        })
    }

    /// Provenance rows: `(rewrite, target, justification, description)` per
    /// applied rewrite.
    pub fn rewrite_rows(&self) -> Vec<[String; 4]> {
        self.rewrites
            .iter()
            .map(|r| {
                [
                    r.kind.name().to_string(),
                    r.kind.target(),
                    r.justification_rendered(),
                    r.description.clone(),
                ]
            })
            .collect()
    }
}
