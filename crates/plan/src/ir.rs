//! The typed wrangle-plan IR.
//!
//! A wrangle pass — select → acquire → map → union → ER → fuse → assemble —
//! is lowered into a small DAG of [`OpNode`]s. Each node carries a typed
//! output schema (`(DataType, nullable)` per column, computed by the
//! analyzer's schema-flow pass), the source partition it operates on, and
//! [`Effects`] annotations derived from the same [`PlanStep`] metadata the
//! determinism audit consumes. The IR is the single source of truth for what
//! executes: `wrangler-core`'s lowering module is the only place operator
//! nodes are constructed (enforced by `scripts/lint.sh` rule 5), and the
//! session consults the compiled [`crate::PlanProgram`] for every execution
//! decision the optimizer can influence.

use std::collections::BTreeMap;

use wrangler_lint::PlanStep;
use wrangler_table::{CastSafety, DataType, Expr, Field, Schema};

/// A typed column in an operator's output schema.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColType {
    /// Column name.
    pub name: String,
    /// Inferred data type.
    pub dtype: DataType,
    /// Whether the column can hold nulls at this point in the plan.
    pub nullable: bool,
}

impl ColType {
    /// A typed column.
    pub fn new(name: impl Into<String>, dtype: DataType, nullable: bool) -> ColType {
        ColType {
            name: name.into(),
            dtype,
            nullable,
        }
    }

    /// Convert a schema into IR column types (schema nullability is carried
    /// through).
    pub fn of_schema(schema: &Schema) -> Vec<ColType> {
        schema
            .fields()
            .iter()
            .map(|f| ColType::new(&f.name, f.dtype, f.nullable))
            .collect()
    }

    /// Convert IR column types back into a schema (for running the
    /// expression typechecker over an operator's output).
    pub fn to_schema(cols: &[ColType]) -> Option<Schema> {
        let fields = cols
            .iter()
            .map(|c| {
                if c.nullable {
                    Field::new(&c.name, c.dtype)
                } else {
                    Field::required(&c.name, c.dtype)
                }
            })
            .collect();
        Schema::new(fields).ok()
    }
}

/// Effect/determinism annotations of one operator, the IR form of the
/// [`PlanStep`] metadata the plan audit consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effects {
    /// Draws randomness.
    pub randomized: bool,
    /// Randomness comes from a declared seed.
    pub seeded: bool,
    /// Iterates hash-keyed state into ordered output.
    pub hash_iteration: bool,
    /// Hash iteration order is normalized before it matters.
    pub order_normalized: bool,
    /// Fans out to parallel workers.
    pub parallel: bool,
    /// Parallel results merge in canonical order.
    pub merge_ordered: bool,
}

impl Effects {
    /// Derive effects from a described plan step.
    pub fn from_step(step: &PlanStep) -> Effects {
        Effects {
            randomized: step.randomized,
            seeded: step.seeded,
            hash_iteration: step.hash_iteration,
            order_normalized: step.order_normalized,
            parallel: step.parallel,
            merge_ordered: step.merge_ordered,
        }
    }

    /// Express the effects back as a plan step named `name`, so the existing
    /// determinism audit can run over IR nodes.
    pub fn to_step(self, name: &str) -> PlanStep {
        PlanStep {
            name: name.to_string(),
            randomized: self.randomized,
            seeded: self.seeded,
            hash_iteration: self.hash_iteration,
            order_normalized: self.order_normalized,
            parallel: self.parallel,
            merge_ordered: self.merge_ordered,
        }
    }

    /// True when no annotation implies run-to-run divergence.
    pub fn deterministic(self) -> bool {
        (!self.randomized || self.seeded)
            && (!self.hash_iteration || self.order_normalized)
            && (!self.parallel || self.merge_ordered)
    }
}

/// Where the row filter executes for one source. Ordered from latest
/// (always legal) to earliest (needs the strongest proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FilterPlacement {
    /// Fused into the union loop, after the per-row poison check. Always
    /// legal: quarantine decisions are identical to the naive plan.
    Union,
    /// Over mapped rows, before the union firewall. Legal only with no scan
    /// barrier (early row drops would change poison/budget decisions).
    PostMap,
    /// Over raw acquired rows, before mapping. Legal only with no scan
    /// barrier and a cell-exact binding for every referenced column.
    Acquire,
}

impl FilterPlacement {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FilterPlacement::Union => "union",
            FilterPlacement::PostMap => "post-map",
            FilterPlacement::Acquire => "acquire",
        }
    }
}

/// One typed operator of the wrangle plan.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Source selection under the session's strategy.
    Select {
        /// Strategy name (for diagnostics/provenance).
        strategy: String,
    },
    /// Acquisition of one source's table. Its `schema` annotation is the
    /// ground-truth raw source schema recorded at lowering time.
    Acquire {
        /// Registry index of the source.
        source: usize,
        /// Source name.
        name: String,
    },
    /// Schema mapping of one acquired source into the target schema.
    Map {
        /// Registry index of the source.
        source: usize,
        /// Per-target-field source column bindings.
        bindings: Vec<Option<usize>>,
        /// Cast safety of each binding under the `CastSafety` lattice
        /// (`Lossless` for unbound fields: an all-null column loses nothing).
        casts: Vec<CastSafety>,
        /// Per-target-field proof that mapping normalization is the identity
        /// on every cell the source actually holds (computed only for
        /// columns the lowering was asked to certify; `false` elsewhere).
        cell_exact: Vec<bool>,
        /// Fingerprint of `(source schema, bindings)`, for duplicate-work
        /// detection across nodes.
        fingerprint: u64,
    },
    /// Row filter over target-schema rows, placed per source.
    Filter {
        /// The predicate, over target column names.
        predicate: Expr,
        /// `(source, placement)` pairs, sorted by source.
        placement: Vec<(usize, FilterPlacement)>,
    },
    /// Union of the mapped (and possibly filtered) source tables.
    Union {
        /// Number of source inputs.
        arity: usize,
    },
    /// Entity resolution over the union.
    Er {
        /// Columns the ER kernel compares.
        columns: Vec<String>,
        /// Match threshold.
        threshold: f64,
    },
    /// Conflict-resolving fusion of clustered claims.
    Fuse {
        /// Per-target-attribute liveness: `false` slots are never consumed
        /// downstream and their fusion may be skipped.
        live: Vec<bool>,
    },
    /// Assembly of the wrangled table.
    Assemble {
        /// Output projection, in target-schema order.
        output: Vec<String>,
    },
}

impl OpKind {
    /// Stable operator name, used in diagnostics loci.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Select { .. } => "select",
            OpKind::Acquire { .. } => "acquire",
            OpKind::Map { .. } => "map",
            OpKind::Filter { .. } => "filter",
            OpKind::Union { .. } => "union",
            OpKind::Er { .. } => "er",
            OpKind::Fuse { .. } => "fuse",
            OpKind::Assemble { .. } => "assemble",
        }
    }

    /// The source partition this operator works on, if per-source.
    pub fn source(&self) -> Option<usize> {
        match self {
            OpKind::Acquire { source, .. } | OpKind::Map { source, .. } => Some(*source),
            _ => None,
        }
    }
}

/// One node of the plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct OpNode {
    /// Node id == index in [`PlanIr::nodes`].
    pub id: usize,
    /// The operator.
    pub kind: OpKind,
    /// Ids of input nodes.
    pub inputs: Vec<usize>,
    /// Typed output schema; filled by the analyzer's schema-flow pass
    /// (lowering may leave non-`Acquire` nodes empty).
    pub schema: Vec<ColType>,
    /// Effect/determinism annotations.
    pub effects: Effects,
}

impl OpNode {
    /// Diagnostic locus name, e.g. `node3:map[src1]`.
    pub fn locus_name(&self) -> String {
        match self.kind.source() {
            Some(s) => format!("node{}:{}[src{s}]", self.id, self.kind.name()),
            None => format!("node{}:{}", self.id, self.kind.name()),
        }
    }
}

/// A lowered wrangle plan: the typed operator DAG plus whole-plan context.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanIr {
    /// The target schema every mapped source lands in.
    pub target: Vec<ColType>,
    /// Operator nodes; a node's inputs always precede it.
    pub nodes: Vec<OpNode>,
    /// True when containment scans/budgets run between map and union: row
    /// sets reaching the firewall must then match the naive plan exactly, so
    /// no filter may execute ahead of it.
    pub scan_barrier: bool,
}

impl PlanIr {
    /// Index of the target column named `name`.
    pub fn target_index(&self, name: &str) -> Option<usize> {
        self.target.iter().position(|c| c.name == name)
    }

    /// The first node matching `pred`.
    fn find(&self, pred: impl Fn(&OpKind) -> bool) -> Option<&OpNode> {
        self.nodes.iter().find(|n| pred(&n.kind))
    }

    /// The filter node, if the plan has one.
    pub fn filter_node(&self) -> Option<&OpNode> {
        self.find(|k| matches!(k, OpKind::Filter { .. }))
    }

    /// The fuse node.
    pub fn fuse_node(&self) -> Option<&OpNode> {
        self.find(|k| matches!(k, OpKind::Fuse { .. }))
    }

    /// The assemble node.
    pub fn assemble_node(&self) -> Option<&OpNode> {
        self.find(|k| matches!(k, OpKind::Assemble { .. }))
    }

    /// All map nodes, in node order.
    pub fn map_nodes(&self) -> impl Iterator<Item = &OpNode> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Map { .. }))
    }

    /// The acquire node for `source`.
    pub fn acquire_node(&self, source: usize) -> Option<&OpNode> {
        self.find(|k| matches!(k, OpKind::Acquire { source: s, .. } if *s == source))
    }
}

/// Fingerprint of one map operator's input: the source schema and the
/// bindings that consume it. Two map nodes with equal fingerprints over the
/// same source perform identical work.
pub fn fingerprint_map(source_schema: &[ColType], bindings: &[Option<usize>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for c in source_schema {
        for b in c.name.bytes() {
            mix(b);
        }
        mix(0xff);
        mix(c.dtype as u8);
        mix(u8::from(c.nullable));
    }
    mix(0xfe);
    for b in bindings {
        match b {
            None => mix(0xfd),
            Some(i) => {
                mix(0x01);
                for byte in (*i as u64).to_le_bytes() {
                    mix(byte);
                }
            }
        }
    }
    h
}

/// The column names a predicate references, sorted and deduplicated.
pub fn predicate_columns(expr: &Expr) -> Vec<String> {
    fn walk(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Col(name) => out.push(name.clone()),
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::Not(a)
            | Expr::IsNull(a)
            | Expr::Lower(a)
            | Expr::Trim(a)
            | Expr::Len(a)
            | Expr::Cast(_, a) => walk(a, out),
            Expr::Coalesce(es) | Expr::Concat(es) => {
                for e in es {
                    walk(e, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Rewrite every column reference through `renames` (references absent from
/// the map are left untouched). Used to push a target-schema predicate down
/// to raw source columns once every referenced binding is proven cell-exact.
pub fn rename_columns(expr: &Expr, renames: &BTreeMap<String, String>) -> Expr {
    let r = |e: &Expr| Box::new(rename_columns(e, renames));
    match expr {
        Expr::Col(name) => Expr::Col(renames.get(name).cloned().unwrap_or_else(|| name.clone())),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(*op, r(a), r(b)),
        Expr::Arith(op, a, b) => Expr::Arith(*op, r(a), r(b)),
        Expr::And(a, b) => Expr::And(r(a), r(b)),
        Expr::Or(a, b) => Expr::Or(r(a), r(b)),
        Expr::Not(a) => Expr::Not(r(a)),
        Expr::IsNull(a) => Expr::IsNull(r(a)),
        Expr::Lower(a) => Expr::Lower(r(a)),
        Expr::Trim(a) => Expr::Trim(r(a)),
        Expr::Len(a) => Expr::Len(r(a)),
        Expr::Cast(dt, a) => Expr::Cast(*dt, r(a)),
        Expr::Coalesce(es) => Expr::Coalesce(es.iter().map(|e| rename_columns(e, renames)).collect()),
        Expr::Concat(es) => Expr::Concat(es.iter().map(|e| rename_columns(e, renames)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_round_trip_plan_steps() {
        let step = PlanStep::deterministic("entity-resolution")
            .with_hash_iteration(true)
            .with_parallelism(true);
        let e = Effects::from_step(&step);
        assert!(e.deterministic());
        assert_eq!(Effects::from_step(&e.to_step("entity-resolution")), e);
        let bad = Effects {
            randomized: true,
            ..Effects::default()
        };
        assert!(!bad.deterministic());
    }

    #[test]
    fn fingerprints_separate_schemas_and_bindings() {
        let a = vec![ColType::new("sku", DataType::Str, false)];
        let b = vec![ColType::new("sku", DataType::Int, false)];
        let bind = vec![Some(0), None];
        assert_eq!(fingerprint_map(&a, &bind), fingerprint_map(&a, &bind));
        assert_ne!(fingerprint_map(&a, &bind), fingerprint_map(&b, &bind));
        assert_ne!(
            fingerprint_map(&a, &bind),
            fingerprint_map(&a, &[None, Some(0)])
        );
    }

    #[test]
    fn predicate_columns_sorted_and_deduped() {
        let p = Expr::col("price")
            .gt(Expr::lit(1.0))
            .and(Expr::col("category").eq(Expr::col("price")));
        assert_eq!(predicate_columns(&p), vec!["category", "price"]);
    }

    #[test]
    fn rename_columns_rewrites_only_mapped_refs() {
        let p = Expr::col("price").gt(Expr::lit(1.0)).and(Expr::col("name").is_null());
        let mut m = BTreeMap::new();
        m.insert("price".to_string(), "cost".to_string());
        let q = rename_columns(&p, &m);
        assert_eq!(predicate_columns(&q), vec!["cost", "name"]);
    }

    #[test]
    fn coltype_schema_round_trip() {
        let cols = vec![
            ColType::new("sku", DataType::Str, false),
            ColType::new("price", DataType::Float, true),
        ];
        let schema = ColType::to_schema(&cols).expect("valid");
        assert_eq!(ColType::of_schema(&schema), cols);
    }
}
