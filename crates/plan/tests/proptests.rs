//! Property tests for the plan analyzer and optimizer: analysis is a pure,
//! idempotent function of the IR; every optimizer rewrite carries a
//! justification the verifier accepts; optimization is a fixed point; and
//! seeded whole-plan defects are caught deterministically.

use proptest::prelude::*;
use wrangler_lint::{Code, DefectClass};
use wrangler_plan::{
    analyze, fixture, inject_plan_defect, Fact, FilterPlacement, OpKind, OptMode, PlanIr,
    PlanProgram,
};
use wrangler_table::Expr;

/// A perturbed — but still clean — variant of the fixture plan: toggle the
/// scan barrier, the predicate column, each source's cell-exactness
/// certificate for that column, and whether the (otherwise dead) `brand`
/// column is projected.
fn plan_variant(
    scan_barrier: bool,
    filter_on_price: bool,
    exact: [bool; 2],
    project_brand: bool,
) -> PlanIr {
    let mut ir = fixture::clean_plan();
    ir.scan_barrier = scan_barrier;
    let (site, predicate) = if filter_on_price {
        (4, Expr::col("price").gt(Expr::lit(10.0)))
    } else {
        (3, Expr::col("category").eq(Expr::lit("home")))
    };
    let filter_id = ir.filter_node().expect("fixture has a filter").id;
    if let OpKind::Filter { predicate: p, .. } = &mut ir.nodes[filter_id].kind {
        *p = predicate;
    }
    let map_ids: Vec<usize> = ir.map_nodes().map(|n| n.id).collect();
    for (source, id) in map_ids.into_iter().enumerate() {
        if let OpKind::Map { cell_exact, .. } = &mut ir.nodes[id].kind {
            cell_exact[site] = exact[source];
        }
    }
    if project_brand {
        let assemble_id = ir.assemble_node().expect("fixture assembles").id;
        if let OpKind::Assemble { output } = &mut ir.nodes[assemble_id].kind {
            output.push("brand".to_string());
        }
    }
    ir
}

proptest! {
    #[test]
    fn analysis_is_deterministic_and_idempotent(
        scan_barrier in any::<bool>(),
        filter_on_price in any::<bool>(),
        exact0 in any::<bool>(),
        exact1 in any::<bool>(),
        project_brand in any::<bool>(),
    ) {
        let ir = plan_variant(scan_barrier, filter_on_price, [exact0, exact1], project_brand);
        let a = analyze(&ir);
        prop_assert_eq!(&a, &analyze(&ir), "two runs must agree");
        let again = analyze(&a.ir);
        prop_assert_eq!(&again, &a, "re-analysis must be the identity");
        prop_assert!(a.report.is_clean(), "variants stay clean: {:?}", a.report);
    }

    #[test]
    fn every_rewrite_is_justified_and_placement_matches_facts(
        scan_barrier in any::<bool>(),
        filter_on_price in any::<bool>(),
        exact0 in any::<bool>(),
        exact1 in any::<bool>(),
        project_brand in any::<bool>(),
    ) {
        let ir = plan_variant(scan_barrier, filter_on_price, [exact0, exact1], project_brand);
        let program = PlanProgram::compile(ir.clone(), OptMode::Optimized);
        let program = match program {
            Ok(p) => p,
            Err(report) => {
                prop_assert!(false, "clean plan must compile: {report:?}");
                return Ok(());
            }
        };
        prop_assert!(program.verification.is_clean());
        let analysis = analyze(&ir);
        for rw in &program.rewrites {
            prop_assert!(!rw.justification.is_empty(), "{:?}", rw.kind);
            for fact in &rw.justification {
                prop_assert!(
                    analysis.holds(fact),
                    "{:?} cites unestablished {}", rw.kind, fact.render()
                );
            }
        }
        // Placement is exactly as early as the facts allow.
        for (source, &is_exact) in [exact0, exact1].iter().enumerate() {
            let expected = if scan_barrier {
                FilterPlacement::Union
            } else if is_exact {
                FilterPlacement::Acquire
            } else {
                FilterPlacement::PostMap
            };
            prop_assert_eq!(program.placement_for(source), expected, "src{}", source);
        }
        // Dead-column elimination tracks the projection: `category` is never
        // projected, `brand` only when the variant asks for it.
        let live = match program.live_mask() {
            Some(live) => live,
            None => {
                prop_assert!(false, "category is always dead, a mask must exist");
                return Ok(());
            }
        };
        prop_assert!(!live[3], "category is unprojected, so dead");
        prop_assert_eq!(live[2], project_brand, "brand liveness tracks projection");
        prop_assert!(live[0] && live[1] && live[4], "projected columns stay live");
        // Naive mode never rewrites and never places early.
        let naive = PlanProgram::compile(ir, OptMode::Naive);
        let naive = match naive {
            Ok(p) => p,
            Err(report) => {
                prop_assert!(false, "naive compile must succeed: {report:?}");
                return Ok(());
            }
        };
        prop_assert!(naive.rewrites.is_empty());
        prop_assert_eq!(&naive.ir, &naive.naive);
    }

    #[test]
    fn optimization_is_a_fixed_point(
        scan_barrier in any::<bool>(),
        filter_on_price in any::<bool>(),
        exact0 in any::<bool>(),
        exact1 in any::<bool>(),
        project_brand in any::<bool>(),
    ) {
        let ir = plan_variant(scan_barrier, filter_on_price, [exact0, exact1], project_brand);
        let once = PlanProgram::compile(ir, OptMode::Optimized);
        let once = match once {
            Ok(p) => p,
            Err(report) => {
                prop_assert!(false, "clean plan must compile: {report:?}");
                return Ok(());
            }
        };
        // Re-compiling the optimized IR must be sound (clean analysis) and
        // must not move anything further.
        let twice = PlanProgram::compile(once.ir.clone(), OptMode::Optimized);
        let twice = match twice {
            Ok(p) => p,
            Err(report) => {
                prop_assert!(false, "optimized plan must re-compile: {report:?}");
                return Ok(());
            }
        };
        prop_assert!(twice.report.is_clean(), "{:?}", twice.report);
        prop_assert_eq!(&twice.ir, &once.ir, "optimize must be a fixed point");
    }

    #[test]
    fn plan_defects_are_caught_deterministically(
        scan_barrier in any::<bool>(),
        exact0 in any::<bool>(),
        exact1 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let ir = plan_variant(scan_barrier, false, [exact0, exact1], false);
        let baseline = analyze(&ir).report;
        prop_assert!(baseline.is_clean(), "{:?}", baseline);
        for (class, code) in [
            (DefectClass::DeadColumnConsumed, Code::PlanDeadColumn),
            (DefectClass::LossyPushdown, Code::PlanLossyPushdown),
            (DefectClass::DuplicateMapWork, Code::PlanDuplicateMapWork),
        ] {
            let a = inject_plan_defect(&ir, class, seed);
            prop_assert_eq!(&a, &inject_plan_defect(&ir, class, seed), "{:?}", class);
            let bad = match a {
                Some(bad) => bad,
                None => {
                    prop_assert!(false, "{class:?} found no injection site");
                    return Ok(());
                }
            };
            let report = analyze(&bad).report;
            prop_assert!(report.has_code(code), "{class:?}: {report:?}");
            prop_assert!(
                !report.newly_versus(&baseline).is_empty(),
                "{class:?} must add findings over baseline"
            );
        }
    }

    #[test]
    fn forged_citations_never_compile(
        scan_barrier in any::<bool>(),
        source in 0usize..4,
    ) {
        let ir = plan_variant(scan_barrier, false, [true, true], false);
        let analysis = analyze(&ir);
        let forged = wrangler_plan::AppliedRewrite {
            kind: wrangler_plan::RewriteKind::SkipDeadFusion {
                column: "sku".to_string(), // projected, so never dead
            },
            justification: vec![Fact::DeadAtFuse {
                column: "sku".to_string(),
            }],
            description: format!("forged (src{source})"),
        };
        let err = PlanProgram::compile_with_rewrites(ir, analysis.ir.clone(), vec![forged]);
        match err {
            Err(report) => prop_assert!(report.has_code(Code::PlanUnjustifiedRewrite)),
            Ok(_) => prop_assert!(false, "forged citation must be rejected"),
        }
    }
}
