//! Property tests for schema matching: similarity laws and matcher sanity.

use proptest::prelude::*;
use wrangler_match::instance::{instance_signals, instance_similarity, profile};
use wrangler_match::strsim::{
    bigram_dice, jaro, jaro_winkler, levenshtein, levenshtein_sim, name_similarity, token_jaccard,
};
use wrangler_match::{match_schemas, select_one_to_one, MatchConfig};
use wrangler_table::{Table, Value};

proptest! {
    #[test]
    fn string_sims_identity_symmetry_bounds(a in "[ -~]{0,16}", b in "[ -~]{0,16}") {
        for f in [levenshtein_sim, jaro, jaro_winkler, token_jaccard, bigram_dice, name_similarity] {
            let ab = f(&a, &b);
            let ba = f(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12, "asymmetric on {a:?},{b:?}");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
            prop_assert!((f(&a, &a) - 1.0).abs() < 1e-12, "self-sim != 1 on {a:?}");
        }
    }

    #[test]
    fn levenshtein_triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_bounded_by_lengths(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    #[test]
    fn instance_similarity_laws(
        xs in prop::collection::vec(-100.0f64..100.0, 0..20),
        ys in prop::collection::vec(-100.0f64..100.0, 0..20),
    ) {
        let a = profile(&xs.iter().map(|&x| Value::Float(x)).collect::<Vec<_>>());
        let b = profile(&ys.iter().map(|&y| Value::Float(y)).collect::<Vec<_>>());
        let ab = instance_similarity(&a, &b);
        let ba = instance_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        let s = instance_signals(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s.type_score));
        if let Some(o) = s.overlap {
            prop_assert!((0.0..=1.0).contains(&o));
        }
        if let Some(d) = s.distribution {
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn matcher_output_is_valid(
        names_l in prop::collection::hash_set("[a-f]{2,6}", 1..5),
        names_r in prop::collection::hash_set("[a-f]{2,6}", 1..5),
        rows in 0usize..6,
    ) {
        let names_l: Vec<String> = names_l.into_iter().collect();
        let names_r: Vec<String> = names_r.into_iter().collect();
        let mk = |names: &[String]| {
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let data = (0..rows)
                .map(|i| names.iter().map(|_| Value::Int(i as i64)).collect())
                .collect();
            Table::literal(&refs, data).expect("aligned")
        };
        let l = mk(&names_l);
        let r = mk(&names_r);
        let corrs = match_schemas(&l, &r, None, &MatchConfig::default());
        for c in &corrs {
            prop_assert!(c.left < l.num_columns());
            prop_assert!(c.right < r.num_columns());
            prop_assert!((0.0..=1.0).contains(&c.probability()));
        }
        // One-to-one selection is injective both ways.
        let sel = select_one_to_one(&corrs);
        let lefts: std::collections::HashSet<_> = sel.iter().map(|c| c.left).collect();
        let rights: std::collections::HashSet<_> = sel.iter().map(|c| c.right).collect();
        prop_assert_eq!(lefts.len(), sel.len());
        prop_assert_eq!(rights.len(), sel.len());
    }

    #[test]
    fn identical_tables_match_identically_named_columns(
        names in prop::collection::hash_set("[a-f]{3,7}", 2..5),
        rows in 3usize..8,
    ) {
        let names: Vec<String> = names.into_iter().collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                names
                    .iter()
                    .enumerate()
                    .map(|(c, _)| Value::from(format!("v{c}_{i}")))
                    .collect()
            })
            .collect();
        let t = Table::literal(&refs, data).expect("aligned");
        let corrs = select_one_to_one(&match_schemas(&t, &t, None, &MatchConfig::default()));
        // Every column pairs with itself.
        for c in &corrs {
            prop_assert_eq!(c.left, c.right, "column matched to a different column");
        }
        prop_assert_eq!(corrs.len(), names.len());
    }

    /// One-to-one selection is a pure function of the correspondence *set*,
    /// even when some scores are NaN: shuffling the input must not change the
    /// selected pairs. (The PR-3 bug: `partial_cmp(..).unwrap_or(Equal)`
    /// makes NaN compare Equal to everything, so the sort — and therefore
    /// the greedy selection — depended on input order.)
    #[test]
    fn selection_is_shuffle_invariant_under_nan_scores(
        raw_edges in prop::collection::vec((0usize..6, 0usize..6), 1..20),
        nan_mask in prop::collection::vec(any::<bool>(), 20),
        rot in 0usize..20,
        rev in any::<bool>(),
    ) {
        use wrangler_match::Correspondence;
        use wrangler_uncertainty::Belief;
        // Dedup to an edge *set* so each (left, right) pair carries one score.
        let edges: std::collections::BTreeSet<(usize, usize)> = raw_edges.into_iter().collect();
        let corrs: Vec<Correspondence> = edges
            .iter()
            .enumerate()
            .map(|(i, &(left, right))| {
                let p = if nan_mask[i % nan_mask.len()] {
                    f64::NAN
                } else {
                    // Deterministic score with deliberate ties across edges.
                    f64::from(u32::try_from((left + right) % 4).unwrap_or(0)) / 4.0
                };
                Correspondence { left, right, belief: Belief::from_prior(p) }
            })
            .collect();
        let mut shuffled = corrs.clone();
        let n = shuffled.len();
        shuffled.rotate_left(rot % n);
        if rev {
            shuffled.reverse();
        }
        let pairs = |cs: &[Correspondence]| -> Vec<(usize, usize)> {
            select_one_to_one(cs).iter().map(|c| (c.left, c.right)).collect()
        };
        prop_assert_eq!(pairs(&corrs), pairs(&shuffled));
    }
}
