//! Evidence combination: column-pair beliefs and schema matching.

use wrangler_context::Ontology;
use wrangler_table::Table;
use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};

use crate::instance::{instance_signals, profile, InstanceProfile};
use crate::name::name_evidence;
use crate::semantic::semantic_evidence;

/// Which evidence kinds to use and how to weigh them. Disabling kinds yields
/// the single-evidence baselines of experiment E5.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Use column-name similarity.
    pub use_names: bool,
    /// Use instance (content) similarity.
    pub use_instances: bool,
    /// Use ontology similarity (requires an ontology to be passed).
    pub use_ontology: bool,
    /// Reliability discount for name evidence (names lie more than data).
    pub name_reliability: f64,
    /// Reliability discount for instance evidence.
    pub instance_reliability: f64,
    /// Reliability discount for ontology evidence.
    pub ontology_reliability: f64,
    /// Prior probability that a random column pair corresponds.
    pub prior: f64,
    /// Minimum posterior for a pair to be reported at all.
    pub min_probability: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            use_names: true,
            use_instances: true,
            use_ontology: true,
            name_reliability: 0.8,
            instance_reliability: 0.7,
            ontology_reliability: 0.9,
            prior: 0.2,
            min_probability: 0.35,
        }
    }
}

impl MatchConfig {
    /// The name-only baseline (state of the art per §2.3: "small numbers of
    /// types of evidence").
    pub fn names_only() -> MatchConfig {
        MatchConfig {
            use_instances: false,
            use_ontology: false,
            ..MatchConfig::default()
        }
    }
}

/// A proposed correspondence between a left and a right column.
#[derive(Debug, Clone)]
pub struct Correspondence {
    /// Column index in the left schema.
    pub left: usize,
    /// Column index in the right schema.
    pub right: usize,
    /// Combined belief that the columns denote the same attribute.
    pub belief: Belief,
}

impl Correspondence {
    /// Posterior probability shorthand.
    pub fn probability(&self) -> f64 {
        self.belief.probability()
    }
}

/// Belief for one column pair given the available evidence.
pub fn pair_belief(
    left_name: &str,
    right_name: &str,
    left_prof: &InstanceProfile,
    right_prof: &InstanceProfile,
    ontology: Option<&Ontology>,
    cfg: &MatchConfig,
) -> Belief {
    let mut b = Belief::from_prior(cfg.prior);
    // Semantic evidence first: when the ontology recognizes both terms its
    // judgement supersedes syntactic name comparison — "cost" vs "price" are
    // spelled differently precisely because sources use synonyms.
    let semantic = if cfg.use_ontology {
        ontology.and_then(|ont| semantic_evidence(ont, left_name, right_name))
    } else {
        None
    };
    if cfg.use_names && semantic.is_none() {
        if let Some(sim) = name_evidence(left_name, right_name) {
            // Asymmetric mapping around a 0.55 neutral point: dissimilar
            // names are only weak negative evidence (synonyms exist), while
            // strongly similar names are strong positive evidence.
            let score = if sim >= 0.55 {
                0.5 + (sim - 0.55) * 0.9
            } else {
                0.5 - (0.55 - sim) * 0.33
            };
            b.update(
                &Evidence::from_score(EvidenceKind::NameSimilarity, score)
                    .discounted(cfg.name_reliability),
            );
        }
    }
    if cfg.use_instances {
        // The three instance signals are quasi-independent; pool each.
        let s = instance_signals(left_prof, right_prof);
        // Type compatibility: mildly positive if compatible, strongly
        // negative if not (a str column is simply not a price).
        let type_score = if s.type_score == 0.0 {
            0.1
        } else {
            0.3 + 0.4 * s.type_score
        };
        b.update(
            &Evidence::from_score(EvidenceKind::InstanceSimilarity, type_score)
                .discounted(cfg.instance_reliability),
        );
        if let Some(o) = s.overlap {
            b.update(
                &Evidence::from_score(EvidenceKind::InstanceSimilarity, o)
                    .discounted(cfg.instance_reliability),
            );
        }
        if let Some(d) = s.distribution {
            b.update(
                &Evidence::from_score(EvidenceKind::InstanceSimilarity, d)
                    .discounted(cfg.instance_reliability),
            );
        }
    }
    if let Some(sim) = semantic {
        b.update(
            &Evidence::from_score(EvidenceKind::Ontology, sim).discounted(cfg.ontology_reliability),
        );
    }
    b
}

/// Instance profiles of every column of a table, in column order. `profile`
/// is a pure function of the column values, so profiling a table once and
/// reusing the result across many [`match_schemas_with_profiles`] calls is
/// byte-identical to re-profiling per call — the basis of the optimizer's
/// shared-target-profile rewrite.
pub fn profile_table(table: &Table) -> Vec<InstanceProfile> {
    table.columns().map(profile).collect()
}

/// Match two tables' schemas: compute a belief per column pair and return all
/// pairs above `cfg.min_probability`, strongest first.
pub fn match_schemas(
    left: &Table,
    right: &Table,
    ontology: Option<&Ontology>,
    cfg: &MatchConfig,
) -> Vec<Correspondence> {
    match_schemas_with_profiles(left, &profile_table(left), right, ontology, cfg)
}

/// [`match_schemas`] with the left side's column profiles precomputed (see
/// [`profile_table`]). `left_profiles` must be the profiles of `left`'s
/// columns in order.
pub fn match_schemas_with_profiles(
    left: &Table,
    left_profiles: &[InstanceProfile],
    right: &Table,
    ontology: Option<&Ontology>,
    cfg: &MatchConfig,
) -> Vec<Correspondence> {
    let right_profiles: Vec<InstanceProfile> = right.columns().map(profile).collect();
    let mut out = Vec::new();
    for (li, lp) in left_profiles.iter().enumerate() {
        let lname = &left.schema().fields()[li].name;
        for (ri, rp) in right_profiles.iter().enumerate() {
            let rname = &right.schema().fields()[ri].name;
            let belief = pair_belief(lname, rname, lp, rp, ontology, cfg);
            if belief.probability() >= cfg.min_probability {
                out.push(Correspondence {
                    left: li,
                    right: ri,
                    belief,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.probability()
            .total_cmp(&a.probability())
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Value;

    fn left() -> Table {
        Table::literal(
            &["sku", "name", "price"],
            vec![
                vec!["a1".into(), "Acme Widget".into(), Value::Float(9.9)],
                vec!["a2".into(), "Bolt Gadget".into(), Value::Float(19.0)],
                vec!["a3".into(), "Acme Flange".into(), Value::Float(5.5)],
                vec!["a4".into(), "Acme Spanner".into(), Value::Float(7.0)],
                vec!["a5".into(), "Bolt Coupler".into(), Value::Float(14.0)],
            ],
        )
        .unwrap()
    }

    /// Overlapping data, drifted schema: synonym + cryptic names.
    fn right() -> Table {
        Table::literal(
            &["code", "title", "col2"],
            vec![
                vec!["a1".into(), "Acme Widget".into(), Value::Float(9.9)],
                vec!["a4".into(), "Acme Spanner".into(), Value::Float(7.5)],
                vec!["a5".into(), "Bolt Coupler".into(), Value::Float(13.0)],
                vec!["b9".into(), "Tyrell Dynamo".into(), Value::Float(18.0)],
            ],
        )
        .unwrap()
    }

    fn top_match_for(corrs: &[Correspondence], left: usize) -> Option<usize> {
        corrs.iter().find(|c| c.left == left).map(|c| c.right)
    }

    #[test]
    fn full_evidence_matches_drifted_schema() {
        let ont = Ontology::ecommerce();
        let corrs = match_schemas(&left(), &right(), Some(&ont), &MatchConfig::default());
        assert_eq!(top_match_for(&corrs, 1), Some(1), "name ↔ title");
        assert_eq!(
            top_match_for(&corrs, 2),
            Some(2),
            "price ↔ col2 via instances"
        );
        assert_eq!(top_match_for(&corrs, 0), Some(0), "sku ↔ code");
    }

    #[test]
    fn names_only_baseline_misses_cryptic_column() {
        let corrs = match_schemas(&left(), &right(), None, &MatchConfig::names_only());
        // price ↔ col2 has no name evidence; belief stays at the (sub-threshold) prior.
        assert_eq!(top_match_for(&corrs, 2), None);
    }

    #[test]
    fn ontology_strengthens_synonym_pairs() {
        use crate::instance::profile;
        let ont = Ontology::ecommerce();
        let l = left();
        let r = right();
        let lp = profile(l.column_named("name").unwrap());
        let rp = profile(r.column_named("title").unwrap());
        let cfg = MatchConfig::default();
        let p_with = pair_belief("name", "title", &lp, &rp, Some(&ont), &cfg).probability();
        let p_without = pair_belief("name", "title", &lp, &rp, None, &cfg).probability();
        assert!(p_with > p_without, "{p_with} vs {p_without}");
    }

    #[test]
    fn beliefs_carry_evidence_ledger() {
        let ont = Ontology::ecommerce();
        let corrs = match_schemas(&left(), &right(), Some(&ont), &MatchConfig::default());
        let c = corrs.iter().find(|c| c.left == 1 && c.right == 1).unwrap();
        // `name` and `title` both resolve in the ontology, which supersedes
        // syntactic name evidence.
        assert_eq!(c.belief.evidence_count(EvidenceKind::NameSimilarity), 0);
        assert!(c.belief.evidence_count(EvidenceKind::InstanceSimilarity) > 0);
        assert!(c.belief.evidence_count(EvidenceKind::Ontology) > 0);
        assert_eq!(c.belief.evidence_diversity(), 2);
        // Without an ontology, name evidence is used for the same pair.
        let no_ont = match_schemas(&left(), &right(), None, &MatchConfig::default());
        if let Some(c2) = no_ont.iter().find(|c| c.left == 0 && c.right == 0) {
            assert!(c2.belief.evidence_count(EvidenceKind::NameSimilarity) > 0);
        }
    }

    #[test]
    fn output_sorted_by_probability() {
        let ont = Ontology::ecommerce();
        let corrs = match_schemas(&left(), &right(), Some(&ont), &MatchConfig::default());
        for w in corrs.windows(2) {
            assert!(w[0].probability() >= w[1].probability());
        }
    }
}
