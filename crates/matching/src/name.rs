//! Name-based match evidence.

use crate::strsim::name_similarity;

/// True for auto-generated, uninformative column names (`col3`, `c12`,
/// `field_2`, `f-name`-style template classes are *not* cryptic). Cryptic
/// names should contribute *no* name evidence rather than negative evidence —
/// absence of a name is not evidence of a non-match.
pub fn is_cryptic(name: &str) -> bool {
    let n = name.trim().to_lowercase();
    for prefix in ["col", "column", "field", "f", "c", "attr", "var"] {
        if let Some(rest) = n.strip_prefix(prefix) {
            let rest = rest.trim_start_matches(['_', '-']);
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                return true;
            }
        }
    }
    false
}

/// Name similarity in \[0, 1\], or `None` when either name is cryptic and the
/// comparison is therefore meaningless.
pub fn name_evidence(a: &str, b: &str) -> Option<f64> {
    if is_cryptic(a) || is_cryptic(b) {
        return None;
    }
    Some(name_similarity(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cryptic_detection() {
        for n in ["col3", "c12", "field_2", "COL7", "attr-9", "f0"] {
            assert!(is_cryptic(n), "{n} should be cryptic");
        }
        for n in ["price", "colour", "city", "code", "f-name", "category"] {
            assert!(!is_cryptic(n), "{n} should not be cryptic");
        }
    }

    #[test]
    fn evidence_none_for_cryptic() {
        assert_eq!(name_evidence("col1", "price"), None);
        assert!(name_evidence("cost", "price").is_some());
        assert!(name_evidence("price", "price").unwrap() >= 1.0 - 1e-12);
    }
}
