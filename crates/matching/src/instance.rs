//! Instance-based match evidence: what the column *contains*.
//!
//! Robust to the cryptic-name sources in the fleet: even a column called
//! `col3` is identifiable as a price by its type, range and value overlap
//! with a known price column.

use std::collections::HashSet;

use wrangler_table::stats::{column_stats, ColumnStats};
use wrangler_table::{DataType, Value};

/// Summary of a column used for instance comparison.
#[derive(Debug, Clone)]
pub struct InstanceProfile {
    /// Statistics.
    pub stats: ColumnStats,
    /// Majority dtype among non-null cells.
    pub dtype: DataType,
    /// Up to `SAMPLE` distinct rendered values (lowercased), for overlap.
    pub sample: HashSet<String>,
}

const SAMPLE: usize = 256;

/// Profile a column for instance matching.
pub fn profile(values: &[Value]) -> InstanceProfile {
    let stats = column_stats(values);
    let mut counts: Vec<(DataType, usize)> = Vec::new();
    let mut sample = HashSet::new();
    for v in values.iter().filter(|v| !v.is_null()) {
        let dt = v.dtype();
        match counts.iter_mut().find(|(d, _)| *d == dt) {
            Some((_, n)) => *n += 1,
            None => counts.push((dt, 1)),
        }
        if sample.len() < SAMPLE {
            sample.insert(v.render().to_lowercase());
        }
    }
    let dtype = counts
        .iter()
        .max_by_key(|(_, n)| *n)
        .map(|(d, _)| *d)
        .unwrap_or(DataType::Null);
    InstanceProfile {
        stats,
        dtype,
        sample,
    }
}

/// The quasi-independent instance signals for one column pair. Each is a
/// score in \[0, 1\] where 0.5 is neutral; `None` means the signal does not
/// apply (and must contribute no evidence either way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceSignals {
    /// Data type compatibility: 1 same type, ~0.9 int/float, 0.5 unknown,
    /// 0 incompatible.
    pub type_score: f64,
    /// Sampled-value overlap (Jaccard); only meaningful for columns that
    /// look categorical/key-like (numeric measures rarely share exact values).
    pub overlap: Option<f64>,
    /// Distribution proximity: mean/σ for numeric pairs, rendered length for
    /// string pairs; `None` for mixed numeric/unknown pairs.
    pub distribution: Option<f64>,
}

/// Compute the instance signals for a column pair.
pub fn instance_signals(a: &InstanceProfile, b: &InstanceProfile) -> InstanceSignals {
    let type_score = match (a.dtype, b.dtype) {
        (x, y) if x == y => 1.0,
        (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => 0.9,
        (DataType::Null, _) | (_, DataType::Null) => 0.5, // unknown, neutral
        _ => 0.0,
    };
    if type_score == 0.0 {
        return InstanceSignals {
            type_score,
            overlap: None,
            distribution: None,
        };
    }
    // An all-null column carries no instances: it can neither support nor
    // refute a correspondence (common for master-data columns that are the
    // very thing we are wrangling in, like `price`).
    if a.dtype == DataType::Null || b.dtype == DataType::Null {
        return InstanceSignals {
            type_score,
            overlap: None,
            distribution: None,
        };
    }

    // Value overlap — decisive for key-like and categorical columns, silent
    // for high-distinctness numeric measures.
    let overlap = if !a.sample.is_empty() && !b.sample.is_empty() {
        let numeric_measures = a.dtype.is_numeric()
            && b.dtype.is_numeric()
            && a.stats.distinctness().min(b.stats.distinctness()) > 0.8;
        if numeric_measures {
            None
        } else {
            let inter = a.sample.intersection(&b.sample).count();
            let union = a.sample.len() + b.sample.len() - inter;
            Some(inter as f64 / union.max(1) as f64)
        }
    } else {
        None
    };

    // Distribution proximity.
    let distribution = if let (Some(ma), Some(mb)) = (a.stats.mean, b.stats.mean) {
        let scale = ma.abs().max(mb.abs()).max(1e-9);
        let mean_prox = 1.0 - ((ma - mb).abs() / scale).min(1.0);
        let std_prox = match (a.stats.std_dev, b.stats.std_dev) {
            (Some(sa), Some(sb)) => {
                let sscale = sa.max(sb).max(1e-9);
                1.0 - ((sa - sb).abs() / sscale).min(1.0)
            }
            _ => mean_prox,
        };
        Some((mean_prox + std_prox) / 2.0)
    } else if a.stats.mean.is_none() && b.stats.mean.is_none() {
        let la = a.stats.mean_len;
        let lb = b.stats.mean_len;
        let scale = la.max(lb).max(1.0);
        Some(1.0 - ((la - lb).abs() / scale).min(1.0))
    } else {
        None
    };

    InstanceSignals {
        type_score,
        overlap,
        distribution,
    }
}

/// Scalar instance similarity in \[0, 1\]: the mean of the applicable signals
/// (with a hard 0 gate on incompatible types). Used where one number is
/// needed (e.g. record-level similarity in ER); the matcher itself consumes
/// the separate signals.
pub fn instance_similarity(a: &InstanceProfile, b: &InstanceProfile) -> f64 {
    let s = instance_signals(a, b);
    if s.type_score == 0.0 {
        return 0.0;
    }
    let mut sum = s.type_score;
    let mut n = 1usize;
    if let Some(o) = s.overlap {
        sum += o;
        n += 1;
    }
    if let Some(d) = s.distribution {
        sum += d;
        n += 1;
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(xs: &[f64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Float(x)).collect()
    }
    fn strs(xs: &[&str]) -> Vec<Value> {
        xs.iter().map(|&x| Value::from(x)).collect()
    }

    #[test]
    fn incompatible_types_score_zero() {
        let nums = profile(&floats(&[1.0, 2.0, 3.0]));
        let words = profile(&strs(&["a", "b", "c"]));
        assert_eq!(instance_similarity(&nums, &words), 0.0);
    }

    #[test]
    fn identical_value_sets_score_high() {
        let a = profile(&strs(&["electronics", "toys", "home", "toys"]));
        let b = profile(&strs(&["toys", "electronics", "home"]));
        assert!(instance_similarity(&a, &b) > 0.8);
    }

    #[test]
    fn similar_price_distributions_beat_dissimilar() {
        let prices_a = profile(&floats(&[9.99, 25.0, 199.0, 49.5, 12.0]));
        let prices_b = profile(&floats(&[10.5, 30.0, 180.0, 55.0, 14.0]));
        let stocks = profile(&floats(&[100000.0, 250000.0, 381000.0]));
        let sim_pp = instance_similarity(&prices_a, &prices_b);
        let sim_ps = instance_similarity(&prices_a, &stocks);
        assert!(sim_pp > sim_ps, "{sim_pp} vs {sim_ps}");
    }

    #[test]
    fn overlap_dominates_for_categorical() {
        let cat_a = profile(&strs(&["x", "y", "x", "y", "x"]));
        let cat_b = profile(&strs(&["x", "y", "y"]));
        let cat_c = profile(&strs(&["p", "q", "p", "q"]));
        assert!(instance_similarity(&cat_a, &cat_b) > instance_similarity(&cat_a, &cat_c));
    }

    #[test]
    fn all_null_columns_are_neutral() {
        let nulls = profile(&[Value::Null, Value::Null]);
        let nums = profile(&floats(&[1.0, 2.0]));
        let s = instance_similarity(&nulls, &nums);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn symmetric() {
        let a = profile(&floats(&[1.0, 2.0, 3.0]));
        let b = profile(&floats(&[2.0, 3.0, 4.0]));
        assert!((instance_similarity(&a, &b) - instance_similarity(&b, &a)).abs() < 1e-12);
    }
}
