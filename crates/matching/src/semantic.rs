//! Ontology-based (semantic) match evidence from the data context.

use wrangler_context::Ontology;
use wrangler_table::DataType;

/// Semantic similarity of two column names under the ontology, if both terms
/// resolve (`None` = the ontology is silent; silence is not evidence).
pub fn semantic_evidence(ontology: &Ontology, a: &str, b: &str) -> Option<f64> {
    let (ca, cb) = (ontology.resolve(a)?, ontology.resolve(b)?);
    Some(ontology.similarity(ca, cb))
}

/// Does the observed column dtype agree with what the ontology expects for
/// the concept the name resolves to? `None` when the ontology is silent.
/// Used to *annotate* extraction and matching with type-level support.
pub fn dtype_agreement(ontology: &Ontology, name: &str, observed: DataType) -> Option<bool> {
    let expected = ontology.expected_dtype(name)?;
    Some(match (expected, observed) {
        (e, o) if e == o => true,
        (DataType::Float, DataType::Int) => true, // ints are acceptable floats
        (_, DataType::Null) => true,              // empty column cannot disagree
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonyms_resolve_to_full_similarity() {
        let o = Ontology::ecommerce();
        assert_eq!(semantic_evidence(&o, "cost", "price"), Some(1.0));
        assert_eq!(semantic_evidence(&o, "title", "name"), Some(1.0));
    }

    #[test]
    fn silence_for_unknown_terms() {
        let o = Ontology::ecommerce();
        assert_eq!(semantic_evidence(&o, "zorp", "price"), None);
    }

    #[test]
    fn related_but_distinct_concepts_score_between() {
        let o = Ontology::ecommerce();
        let s = semantic_evidence(&o, "price", "rating").unwrap();
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn dtype_agreement_checks() {
        let o = Ontology::ecommerce();
        assert_eq!(dtype_agreement(&o, "price", DataType::Float), Some(true));
        assert_eq!(dtype_agreement(&o, "price", DataType::Int), Some(true));
        assert_eq!(dtype_agreement(&o, "price", DataType::Str), Some(false));
        assert_eq!(dtype_agreement(&o, "title", DataType::Str), Some(true));
        assert_eq!(dtype_agreement(&o, "unknown_thing", DataType::Str), None);
        assert_eq!(dtype_agreement(&o, "price", DataType::Null), Some(true));
    }
}
