//! `wrangler-match` — schema matching with multi-evidence combination.
//!
//! §2.3: "a product types ontology could be used ... as an input to the
//! matching of sources that supplements syntactic matching"; §4.1 requires
//! integration components to "take account of a range of different sources of
//! evolving evidence". Matching is where that shows first: deciding that one
//! source's `cost` column corresponds to another's `price` takes
//!
//! * **name evidence** ([`name`]) — edit-distance / token / n-gram
//!   similarity of column names;
//! * **instance evidence** ([`instance`]) — type compatibility, value
//!   overlap and distribution similarity of column contents;
//! * **semantic evidence** ([`semantic`]) — concept similarity under the
//!   data context's ontology;
//!
//! each mapped to a [`wrangler_uncertainty::Evidence`] and pooled into a
//! [`wrangler_uncertainty::Belief`] per column pair ([`combine`]), so the
//! matcher's output carries honest uncertainty instead of an opaque score.
//! [`select`] then extracts a one-to-one correspondence set.
//!
//! The single-evidence baseline for experiment E5 is obtained by disabling
//! evidence kinds in [`combine::MatchConfig`].

pub mod combine;
pub mod instance;
pub mod name;
pub mod select;
pub mod semantic;
pub mod strsim;

pub use combine::{
    match_schemas, match_schemas_with_profiles, profile_table, Correspondence, MatchConfig,
};
pub use instance::InstanceProfile;
pub use select::select_one_to_one;
