//! String similarity primitives.
//!
//! Implemented from the literature definitions; all return similarities in
//! \[0, 1\] with 1 = identical. Used by schema matching (on names) and entity
//! resolution (on values).

/// Levenshtein edit distance (unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 − dist / max_len` (1.0 for two empty strings).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut by_j = matches_a.clone();
    by_j.sort_by_key(|&(_, j)| j);
    let t = matches_a
        .iter()
        .zip(&by_j)
        .filter(|((_, j1), (_, j2))| j1 != j2)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard 0.1 prefix scale, capped at a
/// 4-character common prefix.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of whitespace/underscore/hyphen-separated lowercase
/// token sets.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.iter().filter(|t| tb.contains(*t)).count();
    let union = ta.len() + tb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn tokens(s: &str) -> Vec<String> {
    let mut out: Vec<String> = s
        .to_lowercase()
        .split(|c: char| c.is_whitespace() || c == '_' || c == '-' || c == '.')
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Dice coefficient over character bigrams of the lowercased strings.
pub fn bigram_dice(a: &str, b: &str) -> f64 {
    let ba = bigrams(a);
    let bb = bigrams(b);
    if ba.is_empty() && bb.is_empty() {
        return 1.0;
    }
    if ba.is_empty() || bb.is_empty() {
        return 0.0;
    }
    let mut bb_used = vec![false; bb.len()];
    let mut inter = 0usize;
    for g in &ba {
        if let Some(j) = bb
            .iter()
            .enumerate()
            .position(|(j, h)| !bb_used[j] && h == g)
        {
            bb_used[j] = true;
            inter += 1;
        }
    }
    2.0 * inter as f64 / (ba.len() + bb.len()) as f64
}

fn bigrams(s: &str) -> Vec<(char, char)> {
    let cs: Vec<char> = s.to_lowercase().chars().collect();
    cs.windows(2).map(|w| (w[0], w[1])).collect()
}

/// The combined *name similarity* used by the name matcher: the maximum of
/// Jaro–Winkler, token Jaccard and bigram Dice — names match if they are
/// close under any common convention (abbreviation, reordering, typo).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    if a.eq_ignore_ascii_case(b) {
        return 1.0;
    }
    jaro_winkler(&a.to_lowercase(), &b.to_lowercase())
        .max(token_jaccard(a, b))
        .max(bigram_dice(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert!((levenshtein_sim("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(levenshtein_sim("", ""), 1.0);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook pairs.
        assert!((jaro("MARTHA", "MARHTA") - 0.944_444).abs() < 1e-4);
        assert!((jaro("DWAYNE", "DUANE") - 0.822_222).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.961_111).abs() < 1e-4);
        assert!(jaro_winkler("price", "priced") > jaro("price", "priced"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn token_jaccard_handles_separators() {
        assert_eq!(token_jaccard("unit price", "price_unit"), 1.0);
        assert!((token_jaccard("sale price", "price") - 0.5).abs() < 1e-12);
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_jaccard("abc", "xyz"), 0.0);
    }

    #[test]
    fn bigram_dice_behaviour() {
        assert_eq!(bigram_dice("night", "night"), 1.0);
        assert!(bigram_dice("night", "nacht") > 0.0);
        assert!(bigram_dice("night", "nacht") < 0.5);
        assert_eq!(bigram_dice("a", "a"), 1.0); // no bigrams on either side
        assert_eq!(bigram_dice("ab", "xy"), 0.0);
    }

    #[test]
    fn name_similarity_recognizes_conventions() {
        assert_eq!(name_similarity("Price", "price"), 1.0);
        assert!(name_similarity("unit_price", "price unit") > 0.9);
        assert!(name_similarity("prce", "price") > 0.8); // typo
        assert!(name_similarity("price", "category") < 0.6);
    }

    #[test]
    fn similarities_are_symmetric_and_bounded() {
        let pairs = [
            ("price", "cost"),
            ("name", "title"),
            ("", "x"),
            ("ab", "ab"),
        ];
        for (a, b) in pairs {
            for f in [
                levenshtein_sim,
                jaro,
                jaro_winkler,
                token_jaccard,
                bigram_dice,
            ] {
                let x = f(a, b);
                let y = f(b, a);
                assert!((x - y).abs() < 1e-12, "asymmetry on ({a},{b})");
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }
}
