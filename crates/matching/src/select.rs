//! One-to-one match selection.
//!
//! The matcher proposes a many-to-many scored bipartite graph; integration
//! needs an injective correspondence (each target attribute fed by at most
//! one source column). Greedy selection by descending probability is the
//! standard 1:1 extraction and is a 1/2-approximation of the max-weight
//! matching — ample here, since downstream mapping selection re-scores
//! against the user context anyway.

use crate::combine::Correspondence;

/// Select a one-to-one subset of `correspondences`, greedily by probability.
/// `total_cmp` gives NaN scores a fixed place in the order and ties break on
/// the `(left, right)` index pair, so the output is a pure function of the
/// input set — independent of input order.
pub fn select_one_to_one(correspondences: &[Correspondence]) -> Vec<Correspondence> {
    let mut used_left = std::collections::HashSet::new();
    let mut used_right = std::collections::HashSet::new();
    let mut sorted: Vec<&Correspondence> = correspondences.iter().collect();
    sorted.sort_by(|a, b| {
        b.probability()
            .total_cmp(&a.probability())
            .then_with(|| (a.left, a.right).cmp(&(b.left, b.right)))
    });
    let mut out = Vec::new();
    for c in sorted {
        if used_left.contains(&c.left) || used_right.contains(&c.right) {
            continue;
        }
        used_left.insert(c.left);
        used_right.insert(c.right);
        out.push(c.clone());
    }
    out.sort_by_key(|c| c.left);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};

    fn corr(left: usize, right: usize, p: f64) -> Correspondence {
        let b = Belief::uninformed().with(&Evidence::from_score(EvidenceKind::NameSimilarity, p));
        Correspondence {
            left,
            right,
            belief: b,
        }
    }

    #[test]
    fn greedy_takes_strongest_conflicting_edge() {
        let corrs = vec![
            corr(0, 0, 0.9),
            corr(0, 1, 0.8),
            corr(1, 0, 0.85),
            corr(1, 1, 0.6),
        ];
        let sel = select_one_to_one(&corrs);
        assert_eq!(sel.len(), 2);
        assert_eq!((sel[0].left, sel[0].right), (0, 0));
        assert_eq!((sel[1].left, sel[1].right), (1, 1));
    }

    #[test]
    fn injective_on_both_sides() {
        let corrs = vec![corr(0, 0, 0.9), corr(1, 0, 0.89), corr(2, 0, 0.88)];
        let sel = select_one_to_one(&corrs);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(select_one_to_one(&[]).is_empty());
    }

    #[test]
    fn output_ordered_by_left_index() {
        let corrs = vec![corr(2, 2, 0.9), corr(0, 0, 0.7), corr(1, 1, 0.8)];
        let sel = select_one_to_one(&corrs);
        let lefts: Vec<usize> = sel.iter().map(|c| c.left).collect();
        assert_eq!(lefts, vec![0, 1, 2]);
    }
}
