//! The typed diagnostic model shared by every analysis pass.
//!
//! A [`Diagnostic`] is the unit of analyzer output: a stable [`Code`], a
//! [`Severity`], the [`Component`] of the pipeline it concerns, a
//! human-readable message, and a [`Locus`] pinpointing the artifact element
//! (a binding, an expression path, a plan step) the finding is about. A
//! [`Report`] aggregates the diagnostics of one analysis run in a canonical
//! (deterministic) order, and answers the gating question: may execution
//! proceed under a given [`GateMode`]?

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never blocks.
    Info,
    /// Likely quality loss at runtime (silent dtype corruption, null
    /// hazards); blocks nothing but is reported.
    Warning,
    /// Guaranteed or near-certain runtime failure; blocks execution when the
    /// gate is in deny mode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// Which layer of the wrangling pipeline a finding concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A schema mapping artifact.
    Mapping,
    /// An expression (predicate or projection).
    Expression,
    /// The derived execution plan.
    Plan,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Mapping => "mapping",
            Component::Expression => "expression",
            Component::Plan => "plan",
        };
        write!(f, "{s}")
    }
}

/// Stable diagnostic codes. The numeric block encodes the component:
/// `L0xx` mapping, `L1xx` expression, `L2xx` plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    // --- mapping (L0xx) ---
    /// A binding's source column index is out of range for the source schema.
    BindingOutOfRange,
    /// `bindings` / `binding_beliefs` arity disagrees with the target schema.
    BindingArityMismatch,
    /// A bound source column's dtype has no conversion into the target
    /// field's dtype.
    IncompatibleBinding,
    /// A bound source column's dtype converts only lossily into the target
    /// field's dtype (truncation or partial parsing).
    LossyBinding,
    /// A non-nullable target field has no binding: the output column will be
    /// all null, violating the declared contract.
    UnboundRequired,
    /// No target field is bound at all: executing the mapping produces only
    /// nulls.
    ZeroCoverage,
    /// One source column feeds multiple target fields of conflicting dtypes.
    ConflictingReuse,
    // --- expression (L1xx) ---
    /// A column reference does not resolve against the schema.
    UnknownColumn,
    /// A column index is out of range for the schema (bound expressions).
    ColumnIndexOutOfRange,
    /// Comparison whose operand types can never denote the same domain.
    CrossTypeComparison,
    /// Arithmetic over an operand that is not (and cannot parse as) numeric.
    IllTypedArithmetic,
    /// Boolean connective (`AND`/`OR`/`NOT`) over a non-boolean operand.
    IllTypedLogic,
    /// Division whose divisor is the literal zero, or may evaluate to zero.
    DivByZero,
    /// A nullable operand silently propagates null through the expression
    /// (three-valued logic makes the predicate drop such rows).
    NullPropagation,
    /// A cast to a type the operand's type cannot reach.
    ImpossibleCast,
    /// A predicate whose result type is not boolean.
    NonBooleanPredicate,
    // --- plan (L2xx) ---
    /// A plan step draws randomness without a declared seed.
    UnseededStep,
    /// A plan step iterates hash-keyed state directly into ordered output.
    HashOrderHazard,
    /// A parallel step merges worker output without normalizing order.
    UnorderedMerge,
}

impl Code {
    /// The stable string form (`L001`…) used in reports and experiments.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::BindingOutOfRange => "L001",
            Code::BindingArityMismatch => "L002",
            Code::IncompatibleBinding => "L003",
            Code::LossyBinding => "L004",
            Code::UnboundRequired => "L005",
            Code::ZeroCoverage => "L006",
            Code::ConflictingReuse => "L007",
            Code::UnknownColumn => "L101",
            Code::ColumnIndexOutOfRange => "L102",
            Code::CrossTypeComparison => "L103",
            Code::IllTypedArithmetic => "L104",
            Code::IllTypedLogic => "L105",
            Code::DivByZero => "L106",
            Code::NullPropagation => "L107",
            Code::ImpossibleCast => "L108",
            Code::NonBooleanPredicate => "L109",
            Code::UnseededStep => "L201",
            Code::HashOrderHazard => "L202",
            Code::UnorderedMerge => "L203",
        }
    }

    /// The component this code belongs to.
    pub fn component(self) -> Component {
        match self {
            Code::BindingOutOfRange
            | Code::BindingArityMismatch
            | Code::IncompatibleBinding
            | Code::LossyBinding
            | Code::UnboundRequired
            | Code::ZeroCoverage
            | Code::ConflictingReuse => Component::Mapping,
            Code::UnknownColumn
            | Code::ColumnIndexOutOfRange
            | Code::CrossTypeComparison
            | Code::IllTypedArithmetic
            | Code::IllTypedLogic
            | Code::DivByZero
            | Code::NullPropagation
            | Code::ImpossibleCast
            | Code::NonBooleanPredicate => Component::Expression,
            Code::UnseededStep | Code::HashOrderHazard | Code::UnorderedMerge => Component::Plan,
        }
    }

    /// The default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::BindingOutOfRange
            | Code::BindingArityMismatch
            | Code::UnknownColumn
            | Code::ColumnIndexOutOfRange
            | Code::IllTypedArithmetic
            | Code::IllTypedLogic
            | Code::ImpossibleCast
            | Code::NonBooleanPredicate
            | Code::UnseededStep
            | Code::HashOrderHazard => Severity::Error,
            // `UnboundRequired` stays a warning because `Field::nullable` is
            // informational in this system (inferred from sample data, never
            // enforced on insert): an all-null column is quality loss, not a
            // guaranteed failure.
            Code::UnboundRequired
            | Code::IncompatibleBinding
            | Code::LossyBinding
            | Code::ZeroCoverage
            | Code::ConflictingReuse
            | Code::CrossTypeComparison
            | Code::DivByZero
            | Code::UnorderedMerge => Severity::Warning,
            Code::NullPropagation => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where in the analyzed artifact a finding points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locus {
    /// The artifact as a whole.
    Whole,
    /// The binding feeding the named target field.
    Binding {
        /// Index of the target field.
        target_index: usize,
        /// Name of the target field.
        target_field: String,
    },
    /// A node in an expression tree, as a root-to-node path of child indices
    /// (empty = the root).
    ExprPath(Vec<usize>),
    /// A named plan step.
    Step(String),
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Whole => write!(f, "artifact"),
            Locus::Binding {
                target_index,
                target_field,
            } => write!(f, "binding[{target_index}]→{target_field}"),
            Locus::ExprPath(path) => {
                write!(f, "expr")?;
                for p in path {
                    write!(f, ".{p}")?;
                }
                Ok(())
            }
            Locus::Step(name) => write!(f, "step:{name}"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to `code.severity()`; passes may escalate).
    pub severity: Severity,
    /// Pipeline component.
    pub component: Component,
    /// Human-readable account of the finding.
    pub message: String,
    /// Where in the artifact.
    pub locus: Locus,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and component.
    pub fn new(code: Code, locus: Locus, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            component: code.component(),
            message: message.into(),
            locus,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} at {}: {}",
            self.code, self.severity, self.component, self.locus, self.message
        )
    }
}

/// How the pre-flight gate treats a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateMode {
    /// Do not run the analyzer at all.
    Off,
    /// Run, record diagnostics, never block.
    Warn,
    /// Run, record diagnostics, refuse execution on any `Error`.
    #[default]
    Deny,
}

/// The outcome of one analysis run: diagnostics in canonical order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Add one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorb another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Canonicalize: sort by (severity desc, code, locus, message) and drop
    /// exact duplicates. Called by the passes before returning, so two runs
    /// over the same artifact yield byte-identical reports.
    pub fn canonicalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.locus.cmp(&b.locus))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.diagnostics.dedup();
    }

    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True if no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if no `Error`-severity findings.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True if a distinct code is present.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Should the gate refuse execution under `mode`?
    pub fn blocks(&self, mode: GateMode) -> bool {
        matches!(mode, GateMode::Deny) && !self.is_clean()
    }

    /// Diagnostics present in `self` but not in `baseline` (exact match).
    /// Experiments use this to decide whether an injected defect was *caught*:
    /// a defect counts as caught only if it produces a finding the clean
    /// artifact did not already have.
    pub fn newly_versus(&self, baseline: &Report) -> Vec<Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| !baseline.diagnostics.contains(d))
            .cloned()
            .collect()
    }

    /// One-line summary, e.g. `3 diagnostics (1 error, 2 warnings)`.
    pub fn summary(&self) -> String {
        let errors = self.errors().count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        let infos = self.len() - errors - warnings;
        format!(
            "{} diagnostics ({errors} errors, {warnings} warnings, {infos} infos)",
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_typed() {
        assert_eq!(Code::BindingOutOfRange.as_str(), "L001");
        assert_eq!(Code::UnknownColumn.component(), Component::Expression);
        assert_eq!(Code::HashOrderHazard.component(), Component::Plan);
        assert_eq!(Code::BindingOutOfRange.severity(), Severity::Error);
        assert_eq!(Code::LossyBinding.severity(), Severity::Warning);
    }

    #[test]
    fn report_canonical_order_and_gating() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::LossyBinding,
            Locus::Binding {
                target_index: 1,
                target_field: "price".into(),
            },
            "str feeds float",
        ));
        r.push(Diagnostic::new(
            Code::BindingOutOfRange,
            Locus::Binding {
                target_index: 0,
                target_field: "sku".into(),
            },
            "index 9 out of range",
        ));
        r.canonicalize();
        // Errors sort first.
        assert_eq!(r.diagnostics()[0].code, Code::BindingOutOfRange);
        assert!(!r.is_clean());
        assert!(r.blocks(GateMode::Deny));
        assert!(!r.blocks(GateMode::Warn));
        assert!(!r.blocks(GateMode::Off));
        assert!(r.summary().contains("1 errors"));
    }

    #[test]
    fn dedup_and_display() {
        let d = Diagnostic::new(Code::DivByZero, Locus::ExprPath(vec![0, 1]), "literal zero");
        let mut r = Report::new();
        r.push(d.clone());
        r.push(d.clone());
        r.canonicalize();
        assert_eq!(r.len(), 1);
        let s = d.to_string();
        assert!(s.contains("L106") && s.contains("expr.0.1"), "{s}");
    }

    #[test]
    fn clean_report_never_blocks() {
        let r = Report::new();
        assert!(r.is_clean() && r.is_empty());
        assert!(!r.blocks(GateMode::Deny));
    }
}
