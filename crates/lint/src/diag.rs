//! The typed diagnostic model shared by every analysis pass.
//!
//! A [`Diagnostic`] is the unit of analyzer output: a stable [`Code`], a
//! [`Severity`], the [`Component`] of the pipeline it concerns, a
//! human-readable message, and a [`Locus`] pinpointing the artifact element
//! (a binding, an expression path, a plan step) the finding is about. A
//! [`Report`] aggregates the diagnostics of one analysis run in a canonical
//! (deterministic) order, and answers the gating question: may execution
//! proceed under a given [`GateMode`]?

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never blocks.
    Info,
    /// Likely quality loss at runtime (silent dtype corruption, null
    /// hazards); blocks nothing but is reported.
    Warning,
    /// Guaranteed or near-certain runtime failure; blocks execution when the
    /// gate is in deny mode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

impl Severity {
    /// Inverse of `Display`, for reading persisted baselines.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// Which layer of the wrangling pipeline a finding concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A schema mapping artifact.
    Mapping,
    /// An expression (predicate or projection).
    Expression,
    /// The derived execution plan.
    Plan,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Mapping => "mapping",
            Component::Expression => "expression",
            Component::Plan => "plan",
        };
        write!(f, "{s}")
    }
}

/// Stable diagnostic codes. The numeric block encodes the component:
/// `L0xx` mapping, `L1xx` expression, `L2xx` plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    // --- mapping (L0xx) ---
    /// A binding's source column index is out of range for the source schema.
    BindingOutOfRange,
    /// `bindings` / `binding_beliefs` arity disagrees with the target schema.
    BindingArityMismatch,
    /// A bound source column's dtype has no conversion into the target
    /// field's dtype.
    IncompatibleBinding,
    /// A bound source column's dtype converts only lossily into the target
    /// field's dtype (truncation or partial parsing).
    LossyBinding,
    /// A non-nullable target field has no binding: the output column will be
    /// all null, violating the declared contract.
    UnboundRequired,
    /// No target field is bound at all: executing the mapping produces only
    /// nulls.
    ZeroCoverage,
    /// One source column feeds multiple target fields of conflicting dtypes.
    ConflictingReuse,
    // --- expression (L1xx) ---
    /// A column reference does not resolve against the schema.
    UnknownColumn,
    /// A column index is out of range for the schema (bound expressions).
    ColumnIndexOutOfRange,
    /// Comparison whose operand types can never denote the same domain.
    CrossTypeComparison,
    /// Arithmetic over an operand that is not (and cannot parse as) numeric.
    IllTypedArithmetic,
    /// Boolean connective (`AND`/`OR`/`NOT`) over a non-boolean operand.
    IllTypedLogic,
    /// Division whose divisor is the literal zero, or may evaluate to zero.
    DivByZero,
    /// A nullable operand silently propagates null through the expression
    /// (three-valued logic makes the predicate drop such rows).
    NullPropagation,
    /// A cast to a type the operand's type cannot reach.
    ImpossibleCast,
    /// A predicate whose result type is not boolean.
    NonBooleanPredicate,
    // --- plan (L2xx) ---
    /// A plan step draws randomness without a declared seed.
    UnseededStep,
    /// A plan step iterates hash-keyed state directly into ordered output.
    HashOrderHazard,
    /// A parallel step merges worker output without normalizing order.
    UnorderedMerge,
    // --- whole-plan analysis (L3xx) ---
    /// A column that is dead at fuse time (absent from the output
    /// projection) is still consumed by a downstream operator.
    PlanDeadColumn,
    /// A predicate pushed below a lossy cast boundary, or placed ahead of a
    /// containment scan barrier, where its verdicts could diverge.
    PlanLossyPushdown,
    /// Identical map-generation work repeated across sources sharing the
    /// same inferred schema profile.
    PlanDuplicateMapWork,
    /// An optimizer rewrite whose cited justification is missing from, or
    /// contradicted by, the analysis facts.
    PlanUnjustifiedRewrite,
}

impl Code {
    /// The stable string form (`L001`…) used in reports and experiments.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::BindingOutOfRange => "L001",
            Code::BindingArityMismatch => "L002",
            Code::IncompatibleBinding => "L003",
            Code::LossyBinding => "L004",
            Code::UnboundRequired => "L005",
            Code::ZeroCoverage => "L006",
            Code::ConflictingReuse => "L007",
            Code::UnknownColumn => "L101",
            Code::ColumnIndexOutOfRange => "L102",
            Code::CrossTypeComparison => "L103",
            Code::IllTypedArithmetic => "L104",
            Code::IllTypedLogic => "L105",
            Code::DivByZero => "L106",
            Code::NullPropagation => "L107",
            Code::ImpossibleCast => "L108",
            Code::NonBooleanPredicate => "L109",
            Code::UnseededStep => "L201",
            Code::HashOrderHazard => "L202",
            Code::UnorderedMerge => "L203",
            Code::PlanDeadColumn => "L301",
            Code::PlanLossyPushdown => "L302",
            Code::PlanDuplicateMapWork => "L303",
            Code::PlanUnjustifiedRewrite => "L304",
        }
    }

    /// Inverse of [`Code::as_str`], for reading persisted baselines.
    pub fn parse(s: &str) -> Option<Code> {
        let all = [
            Code::BindingOutOfRange,
            Code::BindingArityMismatch,
            Code::IncompatibleBinding,
            Code::LossyBinding,
            Code::UnboundRequired,
            Code::ZeroCoverage,
            Code::ConflictingReuse,
            Code::UnknownColumn,
            Code::ColumnIndexOutOfRange,
            Code::CrossTypeComparison,
            Code::IllTypedArithmetic,
            Code::IllTypedLogic,
            Code::DivByZero,
            Code::NullPropagation,
            Code::ImpossibleCast,
            Code::NonBooleanPredicate,
            Code::UnseededStep,
            Code::HashOrderHazard,
            Code::UnorderedMerge,
            Code::PlanDeadColumn,
            Code::PlanLossyPushdown,
            Code::PlanDuplicateMapWork,
            Code::PlanUnjustifiedRewrite,
        ];
        all.into_iter().find(|c| c.as_str() == s)
    }

    /// The component this code belongs to.
    pub fn component(self) -> Component {
        match self {
            Code::BindingOutOfRange
            | Code::BindingArityMismatch
            | Code::IncompatibleBinding
            | Code::LossyBinding
            | Code::UnboundRequired
            | Code::ZeroCoverage
            | Code::ConflictingReuse => Component::Mapping,
            Code::UnknownColumn
            | Code::ColumnIndexOutOfRange
            | Code::CrossTypeComparison
            | Code::IllTypedArithmetic
            | Code::IllTypedLogic
            | Code::DivByZero
            | Code::NullPropagation
            | Code::ImpossibleCast
            | Code::NonBooleanPredicate => Component::Expression,
            Code::UnseededStep
            | Code::HashOrderHazard
            | Code::UnorderedMerge
            | Code::PlanDeadColumn
            | Code::PlanLossyPushdown
            | Code::PlanDuplicateMapWork
            | Code::PlanUnjustifiedRewrite => Component::Plan,
        }
    }

    /// The default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::BindingOutOfRange
            | Code::BindingArityMismatch
            | Code::UnknownColumn
            | Code::ColumnIndexOutOfRange
            | Code::IllTypedArithmetic
            | Code::IllTypedLogic
            | Code::ImpossibleCast
            | Code::NonBooleanPredicate
            | Code::UnseededStep
            | Code::HashOrderHazard
            | Code::PlanDeadColumn
            | Code::PlanLossyPushdown
            | Code::PlanUnjustifiedRewrite => Severity::Error,
            // `UnboundRequired` stays a warning because `Field::nullable` is
            // informational in this system (inferred from sample data, never
            // enforced on insert): an all-null column is quality loss, not a
            // guaranteed failure.
            Code::UnboundRequired
            | Code::IncompatibleBinding
            | Code::LossyBinding
            | Code::ZeroCoverage
            | Code::ConflictingReuse
            | Code::CrossTypeComparison
            | Code::DivByZero
            | Code::UnorderedMerge
            | Code::PlanDuplicateMapWork => Severity::Warning,
            Code::NullPropagation => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where in the analyzed artifact a finding points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locus {
    /// The artifact as a whole.
    Whole,
    /// The binding feeding the named target field.
    Binding {
        /// Index of the target field.
        target_index: usize,
        /// Name of the target field.
        target_field: String,
    },
    /// A node in an expression tree, as a root-to-node path of child indices
    /// (empty = the root).
    ExprPath(Vec<usize>),
    /// A named plan step.
    Step(String),
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Whole => write!(f, "artifact"),
            Locus::Binding {
                target_index,
                target_field,
            } => write!(f, "binding[{target_index}]→{target_field}"),
            Locus::ExprPath(path) => {
                write!(f, "expr")?;
                for p in path {
                    write!(f, ".{p}")?;
                }
                Ok(())
            }
            Locus::Step(name) => write!(f, "step:{name}"),
        }
    }
}

impl Locus {
    /// Inverse of `Display`, for reading persisted baselines. Every string
    /// `Display` can produce parses back to the original locus.
    pub fn parse(s: &str) -> Option<Locus> {
        if s == "artifact" {
            return Some(Locus::Whole);
        }
        if let Some(rest) = s.strip_prefix("binding[") {
            let (idx, field) = rest.split_once("]→")?;
            return Some(Locus::Binding {
                target_index: idx.parse().ok()?,
                target_field: field.to_string(),
            });
        }
        if let Some(rest) = s.strip_prefix("step:") {
            return Some(Locus::Step(rest.to_string()));
        }
        if s == "expr" {
            return Some(Locus::ExprPath(Vec::new()));
        }
        if let Some(rest) = s.strip_prefix("expr.") {
            let mut path = Vec::new();
            for part in rest.split('.') {
                path.push(part.parse().ok()?);
            }
            return Some(Locus::ExprPath(path));
        }
        None
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to `code.severity()`; passes may escalate).
    pub severity: Severity,
    /// Pipeline component.
    pub component: Component,
    /// Human-readable account of the finding.
    pub message: String,
    /// Where in the artifact.
    pub locus: Locus,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and component.
    pub fn new(code: Code, locus: Locus, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            component: code.component(),
            message: message.into(),
            locus,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} at {}: {}",
            self.code, self.severity, self.component, self.locus, self.message
        )
    }
}

/// How the pre-flight gate treats a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateMode {
    /// Do not run the analyzer at all.
    Off,
    /// Run, record diagnostics, never block.
    Warn,
    /// Run, record diagnostics, refuse execution on any `Error`.
    #[default]
    Deny,
}

/// The outcome of one analysis run: diagnostics in canonical order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Add one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorb another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Canonicalize: sort by (severity desc, code, locus, message) and drop
    /// exact duplicates. Called by the passes before returning, so two runs
    /// over the same artifact yield byte-identical reports.
    pub fn canonicalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.locus.cmp(&b.locus))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.diagnostics.dedup();
    }

    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True if no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if no `Error`-severity findings.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True if a distinct code is present.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Should the gate refuse execution under `mode`?
    pub fn blocks(&self, mode: GateMode) -> bool {
        matches!(mode, GateMode::Deny) && !self.is_clean()
    }

    /// Diagnostics present in `self` but not in `baseline` (exact match).
    /// Experiments use this to decide whether an injected defect was *caught*:
    /// a defect counts as caught only if it produces a finding the clean
    /// artifact did not already have.
    pub fn newly_versus(&self, baseline: &Report) -> Vec<Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| !baseline.diagnostics.contains(d))
            .cloned()
            .collect()
    }

    /// Serialize the report as the committed baseline format: a JSON array
    /// of `["code","severity","locus","message"]` entries, one per
    /// diagnostic, in the report's canonical order. Hand-rolled (the
    /// workspace has no serde) and stable byte-for-byte across runs once the
    /// report is canonicalized.
    pub fn to_baseline_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("  [");
            for (j, part) in [
                d.code.as_str().to_string(),
                d.severity.to_string(),
                d.locus.to_string(),
                d.message.clone(),
            ]
            .iter()
            .enumerate()
            {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                out.push_str(&json_escape(part));
                out.push('"');
            }
            out.push(']');
            if i + 1 < self.diagnostics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Parse a baseline produced by [`Report::to_baseline_json`]. Unknown
    /// codes/severities/loci are structured errors, not panics, so a stale
    /// baseline fails loudly in CI instead of silently grandfathering.
    pub fn from_baseline_json(s: &str) -> Result<Report, String> {
        let rows = parse_string_rows(s)?;
        let mut report = Report::new();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != 4 {
                return Err(format!("baseline entry {i}: want 4 fields, got {}", row.len()));
            }
            let code = Code::parse(&row[0])
                .ok_or_else(|| format!("baseline entry {i}: unknown code {:?}", row[0]))?;
            let severity = Severity::parse(&row[1])
                .ok_or_else(|| format!("baseline entry {i}: unknown severity {:?}", row[1]))?;
            let locus = Locus::parse(&row[2])
                .ok_or_else(|| format!("baseline entry {i}: unparseable locus {:?}", row[2]))?;
            report.push(Diagnostic {
                code,
                severity,
                component: code.component(),
                message: row[3].clone(),
                locus,
            });
        }
        report.canonicalize();
        Ok(report)
    }

    /// One-line summary, e.g. `3 diagnostics (1 error, 2 warnings)`.
    pub fn summary(&self) -> String {
        let errors = self.errors().count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        let infos = self.len() - errors - warnings;
        format!(
            "{} diagnostics ({errors} errors, {warnings} warnings, {infos} infos)",
            self.len()
        )
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal parser for the baseline format: a JSON array of arrays of
/// strings. Tolerates arbitrary whitespace; rejects anything else.
fn parse_string_rows(s: &str) -> Result<Vec<Vec<String>>, String> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < chars.len() && chars[*i].is_whitespace() {
            *i += 1;
        }
    };
    let expect = |i: &mut usize, c: char| -> Result<(), String> {
        if *i < chars.len() && chars[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("baseline: expected {c:?} at char {i}", i = *i))
        }
    };
    let parse_str = |i: &mut usize| -> Result<String, String> {
        expect(i, '"')?;
        let mut out = String::new();
        while *i < chars.len() {
            let c = chars[*i];
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = *chars.get(*i).ok_or("baseline: dangling escape")?;
                    *i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            if *i + 4 > chars.len() {
                                return Err("baseline: truncated \\u escape".into());
                            }
                            let hex: String = chars[*i..*i + 4].iter().collect();
                            *i += 4;
                            let n = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("baseline: bad \\u{hex}"))?;
                            out.push(
                                char::from_u32(n)
                                    .ok_or_else(|| format!("baseline: invalid \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("baseline: bad escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("baseline: unterminated string".into())
    };
    skip_ws(&mut i);
    expect(&mut i, '[')?;
    let mut rows = Vec::new();
    skip_ws(&mut i);
    if i < chars.len() && chars[i] == ']' {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            expect(&mut i, '[')?;
            let mut row = Vec::new();
            skip_ws(&mut i);
            if i < chars.len() && chars[i] == ']' {
                i += 1;
            } else {
                loop {
                    skip_ws(&mut i);
                    row.push(parse_str(&mut i)?);
                    skip_ws(&mut i);
                    if i < chars.len() && chars[i] == ',' {
                        i += 1;
                        continue;
                    }
                    expect(&mut i, ']')?;
                    break;
                }
            }
            rows.push(row);
            skip_ws(&mut i);
            if i < chars.len() && chars[i] == ',' {
                i += 1;
                continue;
            }
            expect(&mut i, ']')?;
            break;
        }
    }
    skip_ws(&mut i);
    if i != chars.len() {
        return Err(format!("baseline: trailing content at char {i}"));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_typed() {
        assert_eq!(Code::BindingOutOfRange.as_str(), "L001");
        assert_eq!(Code::UnknownColumn.component(), Component::Expression);
        assert_eq!(Code::HashOrderHazard.component(), Component::Plan);
        assert_eq!(Code::BindingOutOfRange.severity(), Severity::Error);
        assert_eq!(Code::LossyBinding.severity(), Severity::Warning);
    }

    #[test]
    fn report_canonical_order_and_gating() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::LossyBinding,
            Locus::Binding {
                target_index: 1,
                target_field: "price".into(),
            },
            "str feeds float",
        ));
        r.push(Diagnostic::new(
            Code::BindingOutOfRange,
            Locus::Binding {
                target_index: 0,
                target_field: "sku".into(),
            },
            "index 9 out of range",
        ));
        r.canonicalize();
        // Errors sort first.
        assert_eq!(r.diagnostics()[0].code, Code::BindingOutOfRange);
        assert!(!r.is_clean());
        assert!(r.blocks(GateMode::Deny));
        assert!(!r.blocks(GateMode::Warn));
        assert!(!r.blocks(GateMode::Off));
        assert!(r.summary().contains("1 errors"));
    }

    #[test]
    fn dedup_and_display() {
        let d = Diagnostic::new(Code::DivByZero, Locus::ExprPath(vec![0, 1]), "literal zero");
        let mut r = Report::new();
        r.push(d.clone());
        r.push(d.clone());
        r.canonicalize();
        assert_eq!(r.len(), 1);
        let s = d.to_string();
        assert!(s.contains("L106") && s.contains("expr.0.1"), "{s}");
    }

    #[test]
    fn clean_report_never_blocks() {
        let r = Report::new();
        assert!(r.is_clean() && r.is_empty());
        assert!(!r.blocks(GateMode::Deny));
    }

    #[test]
    fn plan_codes_are_stable_and_typed() {
        assert_eq!(Code::PlanDeadColumn.as_str(), "L301");
        assert_eq!(Code::PlanLossyPushdown.as_str(), "L302");
        assert_eq!(Code::PlanDuplicateMapWork.as_str(), "L303");
        assert_eq!(Code::PlanUnjustifiedRewrite.as_str(), "L304");
        for c in [
            Code::PlanDeadColumn,
            Code::PlanLossyPushdown,
            Code::PlanDuplicateMapWork,
            Code::PlanUnjustifiedRewrite,
        ] {
            assert_eq!(c.component(), Component::Plan);
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::PlanDuplicateMapWork.severity(), Severity::Warning);
        assert_eq!(Code::PlanUnjustifiedRewrite.severity(), Severity::Error);
        assert_eq!(Code::parse("L999"), None);
    }

    #[test]
    fn locus_parse_inverts_display() {
        let loci = [
            Locus::Whole,
            Locus::Binding {
                target_index: 3,
                target_field: "price".into(),
            },
            Locus::ExprPath(vec![]),
            Locus::ExprPath(vec![0, 2, 1]),
            Locus::Step("entity-resolution".into()),
        ];
        for l in loci {
            assert_eq!(Locus::parse(&l.to_string()), Some(l.clone()), "{l}");
        }
        assert_eq!(Locus::parse("nonsense"), None);
    }

    #[test]
    fn baseline_json_round_trips() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::LossyBinding,
            Locus::Binding {
                target_index: 1,
                target_field: "price".into(),
            },
            "str \"quoted\" feeds\nfloat",
        ));
        r.push(Diagnostic::new(
            Code::PlanDeadColumn,
            Locus::Step("fusion".into()),
            "column `brand` dead at fuse",
        ));
        r.canonicalize();
        let json = r.to_baseline_json();
        let back = Report::from_baseline_json(&json).expect("round trip");
        assert_eq!(back, r);
        // Stable: serializing the parsed report reproduces the bytes.
        assert_eq!(back.to_baseline_json(), json);
    }

    #[test]
    fn baseline_json_empty_and_errors() {
        let empty = Report::from_baseline_json("[]").expect("empty ok");
        assert!(empty.is_empty());
        assert_eq!(Report::new().to_baseline_json(), "[\n]\n");
        assert!(Report::from_baseline_json("[[\"L001\",\"error\",\"artifact\"]]").is_err());
        assert!(Report::from_baseline_json(
            "[[\"L999\",\"error\",\"artifact\",\"m\"]]"
        )
        .is_err());
        assert!(Report::from_baseline_json(
            "[[\"L001\",\"fatal\",\"artifact\",\"m\"]]"
        )
        .is_err());
        assert!(Report::from_baseline_json("[] trailing").is_err());
    }
}
