//! Static typechecking of expressions against a schema.
//!
//! The checker runs the same abstract interpretation over [`Expr`] (name
//! based) and [`BoundExpr`] (index based): infer a type for every node,
//! flagging constructions the evaluator is guaranteed (or likely) to reject
//! at runtime — ill-typed arithmetic and logic, impossible casts, literal
//! division by zero — plus hazards that never error but silently change
//! results, like null propagation through a predicate.

use wrangler_table::expr::{ArithOp, BoundExpr, CmpOp};
use wrangler_table::{CastSafety, DataType, Expr, Schema, Value};

use crate::diag::{Code, Diagnostic, Locus, Report};

/// The abstract type of an expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ty {
    /// Inferred data type; `DataType::Null` means statically unknown/null.
    pub dtype: DataType,
    /// Whether the node can evaluate to `Null`.
    pub nullable: bool,
}

impl Ty {
    fn new(dtype: DataType, nullable: bool) -> Ty {
        Ty { dtype, nullable }
    }
}

/// Typecheck a name-based expression against `schema`.
pub fn check_expr(expr: &Expr, schema: &Schema) -> Report {
    let mut cx = Checker::new(schema);
    cx.infer(expr);
    cx.finish()
}

/// Typecheck a bound (index-based) expression against `schema`.
pub fn check_bound(expr: &BoundExpr, schema: &Schema) -> Report {
    let mut cx = Checker::new(schema);
    cx.infer_bound(expr);
    cx.finish()
}

/// Typecheck `expr` as a *predicate*: additionally require a boolean result
/// and flag nullable roots (three-valued logic silently drops such rows).
pub fn check_predicate(expr: &Expr, schema: &Schema) -> Report {
    let mut cx = Checker::new(schema);
    let ty = cx.infer(expr);
    cx.check_predicate_root(ty);
    cx.finish()
}

struct Checker<'a> {
    schema: &'a Schema,
    path: Vec<usize>,
    report: Report,
}

impl<'a> Checker<'a> {
    fn new(schema: &'a Schema) -> Self {
        Checker {
            schema,
            path: Vec::new(),
            report: Report::new(),
        }
    }

    fn finish(mut self) -> Report {
        self.report.canonicalize();
        self.report
    }

    fn diag(&mut self, code: Code, message: String) {
        self.report
            .push(Diagnostic::new(code, Locus::ExprPath(self.path.clone()), message));
    }

    fn check_predicate_root(&mut self, ty: Ty) {
        if !matches!(ty.dtype, DataType::Bool | DataType::Null) {
            self.diag(
                Code::NonBooleanPredicate,
                format!("predicate evaluates to {}, not bool", ty.dtype),
            );
        }
        if ty.nullable {
            self.diag(
                Code::NullPropagation,
                "predicate can evaluate to null; such rows are silently dropped \
                 (SQL WHERE semantics)"
                    .to_string(),
            );
        }
    }

    fn at<T>(&mut self, child: usize, f: impl FnOnce(&mut Self) -> T) -> T {
        self.path.push(child);
        let out = f(self);
        self.path.pop();
        out
    }

    fn col_ty(&mut self, idx: Result<usize, String>) -> Ty {
        match idx {
            Ok(i) => match self.schema.field(i) {
                Ok(f) => Ty::new(f.dtype, f.nullable),
                Err(_) => {
                    self.diag(
                        Code::ColumnIndexOutOfRange,
                        format!("column index {i} out of range for {} columns", self.schema.len()),
                    );
                    Ty::new(DataType::Null, true)
                }
            },
            Err(name) => {
                self.diag(
                    Code::UnknownColumn,
                    format!("no column named `{name}` in schema {}", self.schema),
                );
                Ty::new(DataType::Null, true)
            }
        }
    }

    fn infer(&mut self, e: &Expr) -> Ty {
        match e {
            Expr::Col(name) => {
                let idx = self
                    .schema
                    .index_of(name)
                    .map_err(|_| name.clone());
                self.col_ty(idx)
            }
            Expr::Lit(v) => self.lit_ty(v),
            Expr::Cmp(op, a, b) => {
                let ta = self.at(0, |cx| cx.infer(a));
                let tb = self.at(1, |cx| cx.infer(b));
                self.cmp_ty(*op, ta, tb)
            }
            Expr::Arith(op, a, b) => {
                let ta = self.at(0, |cx| cx.infer(a));
                let tb = self.at(1, |cx| cx.infer(b));
                let zero_div = *op == ArithOp::Div && matches!(&**b, Expr::Lit(v) if is_zero(v));
                self.arith_ty(*op, ta, tb, zero_div)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                let ta = self.at(0, |cx| cx.infer(a));
                let tb = self.at(1, |cx| cx.infer(b));
                self.logic_ty(&[ta, tb])
            }
            Expr::Not(a) => {
                let ta = self.at(0, |cx| cx.infer(a));
                self.logic_ty(&[ta])
            }
            Expr::IsNull(a) => {
                self.at(0, |cx| cx.infer(a));
                Ty::new(DataType::Bool, false)
            }
            Expr::Lower(a) | Expr::Trim(a) => {
                let ta = self.at(0, |cx| cx.infer(a));
                Ty::new(DataType::Str, ta.nullable)
            }
            Expr::Len(a) => {
                let ta = self.at(0, |cx| cx.infer(a));
                Ty::new(DataType::Int, ta.nullable)
            }
            Expr::Coalesce(xs) => {
                let tys: Vec<Ty> = xs
                    .iter()
                    .enumerate()
                    .map(|(i, x)| self.at(i, |cx| cx.infer(x)))
                    .collect();
                coalesce_ty(&tys)
            }
            Expr::Cast(dt, a) => {
                let ta = self.at(0, |cx| cx.infer(a));
                self.cast_ty(*dt, ta)
            }
            Expr::Concat(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    self.at(i, |cx| cx.infer(x));
                }
                Ty::new(DataType::Str, false)
            }
        }
    }

    fn infer_bound(&mut self, e: &BoundExpr) -> Ty {
        match e {
            BoundExpr::Col(i) => self.col_ty(Ok(*i)),
            BoundExpr::Lit(v) => self.lit_ty(v),
            BoundExpr::Cmp(op, a, b) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                let tb = self.at(1, |cx| cx.infer_bound(b));
                self.cmp_ty(*op, ta, tb)
            }
            BoundExpr::Arith(op, a, b) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                let tb = self.at(1, |cx| cx.infer_bound(b));
                let zero_div =
                    *op == ArithOp::Div && matches!(&**b, BoundExpr::Lit(v) if is_zero(v));
                self.arith_ty(*op, ta, tb, zero_div)
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                let tb = self.at(1, |cx| cx.infer_bound(b));
                self.logic_ty(&[ta, tb])
            }
            BoundExpr::Not(a) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                self.logic_ty(&[ta])
            }
            BoundExpr::IsNull(a) => {
                self.at(0, |cx| cx.infer_bound(a));
                Ty::new(DataType::Bool, false)
            }
            BoundExpr::Lower(a) | BoundExpr::Trim(a) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                Ty::new(DataType::Str, ta.nullable)
            }
            BoundExpr::Len(a) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                Ty::new(DataType::Int, ta.nullable)
            }
            BoundExpr::Coalesce(xs) => {
                let tys: Vec<Ty> = xs
                    .iter()
                    .enumerate()
                    .map(|(i, x)| self.at(i, |cx| cx.infer_bound(x)))
                    .collect();
                coalesce_ty(&tys)
            }
            BoundExpr::Cast(dt, a) => {
                let ta = self.at(0, |cx| cx.infer_bound(a));
                self.cast_ty(*dt, ta)
            }
            BoundExpr::Concat(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    self.at(i, |cx| cx.infer_bound(x));
                }
                Ty::new(DataType::Str, false)
            }
        }
    }

    fn lit_ty(&mut self, v: &Value) -> Ty {
        Ty::new(v.dtype(), v.is_null())
    }

    fn cmp_ty(&mut self, _op: CmpOp, a: Ty, b: Ty) -> Ty {
        // Values carry a total order, so any comparison *evaluates* — but
        // comparing across concrete non-string domains (e.g. an int column
        // against a bool literal) orders by type tag, which is almost never
        // what the author meant. Str operands are exempt: messy sources
        // legitimately hold numbers as strings.
        if a.dtype != DataType::Null
            && b.dtype != DataType::Null
            && a.dtype != b.dtype
            && a.dtype.unify(b.dtype) == DataType::Str
            && !(a.dtype == DataType::Str || b.dtype == DataType::Str)
        {
            self.diag(
                Code::CrossTypeComparison,
                format!(
                    "comparison between {} and {} orders by type tag, not value",
                    a.dtype, b.dtype
                ),
            );
        }
        Ty::new(DataType::Bool, a.nullable || b.nullable)
    }

    fn arith_ty(&mut self, op: ArithOp, a: Ty, b: Ty, literal_zero_divisor: bool) -> Ty {
        for t in [a, b] {
            if matches!(t.dtype, DataType::Str | DataType::Bool) {
                self.diag(
                    Code::IllTypedArithmetic,
                    format!("arithmetic over a {} operand fails at runtime", t.dtype),
                );
            }
        }
        if literal_zero_divisor {
            self.diag(
                Code::DivByZero,
                "division by the literal zero always yields null".to_string(),
            );
        }
        let dtype = if a.dtype == DataType::Int && b.dtype == DataType::Int && op != ArithOp::Div {
            DataType::Int
        } else {
            DataType::Float
        };
        // Division can yield null even for non-null inputs (zero divisor).
        let nullable = a.nullable || b.nullable || op == ArithOp::Div;
        Ty::new(dtype, nullable)
    }

    fn logic_ty(&mut self, operands: &[Ty]) -> Ty {
        let mut nullable = false;
        for t in operands {
            if !matches!(t.dtype, DataType::Bool | DataType::Null) {
                self.diag(
                    Code::IllTypedLogic,
                    format!("boolean connective over a {} operand fails at runtime", t.dtype),
                );
            }
            nullable |= t.nullable || t.dtype == DataType::Null;
        }
        Ty::new(DataType::Bool, nullable)
    }

    fn cast_ty(&mut self, target: DataType, a: Ty) -> Ty {
        if a.dtype.cast_safety(target) == CastSafety::Incompatible {
            self.diag(
                Code::ImpossibleCast,
                format!("cast from {} to {target} has no conversion", a.dtype),
            );
        }
        Ty::new(target, a.nullable)
    }
}

fn coalesce_ty(tys: &[Ty]) -> Ty {
    let dtype = tys
        .iter()
        .fold(DataType::Null, |acc, t| acc.unify(t.dtype));
    // Non-null as soon as one operand is guaranteed non-null.
    let nullable = !tys.iter().any(|t| !t.nullable && t.dtype != DataType::Null);
    Ty::new(dtype, nullable)
}

fn is_zero(v: &Value) -> bool {
    matches!(v, Value::Int(0)) || matches!(v, Value::Float(f) if *f == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("name", DataType::Str),
            Field::new("price", DataType::Float),
            Field::required("qty", DataType::Int),
            Field::required("active", DataType::Bool),
        ])
        .expect("unique names")
    }

    #[test]
    fn well_typed_predicate_is_clean() {
        let e = Expr::col("price")
            .gt(Expr::lit(10.0))
            .and(Expr::col("active"));
        let r = check_expr(&e, &schema());
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn unknown_column_is_error() {
        let e = Expr::col("nope").gt(Expr::lit(1));
        let r = check_expr(&e, &schema());
        assert!(r.has_code(Code::UnknownColumn));
        assert!(!r.is_clean());
    }

    #[test]
    fn bound_index_out_of_range_is_error() {
        let e = BoundExpr::Col(42);
        let r = check_bound(&e, &schema());
        assert!(r.has_code(Code::ColumnIndexOutOfRange));
    }

    #[test]
    fn arithmetic_over_strings_is_error() {
        let e = Expr::col("name").add(Expr::lit(1));
        let r = check_expr(&e, &schema());
        assert!(r.has_code(Code::IllTypedArithmetic));
        assert!(!r.is_clean());
    }

    #[test]
    fn logic_over_non_bool_is_error() {
        let e = Expr::col("qty").and(Expr::col("active"));
        let r = check_expr(&e, &schema());
        assert!(r.has_code(Code::IllTypedLogic));
    }

    #[test]
    fn div_by_literal_zero_is_flagged() {
        let e = Expr::col("qty").div(Expr::lit(0));
        let r = check_expr(&e, &schema());
        assert!(r.has_code(Code::DivByZero));
        assert!(r.is_clean(), "hazard, not a hard error");
    }

    #[test]
    fn cross_type_comparison_is_flagged() {
        let e = Expr::col("qty").eq(Expr::col("active"));
        let r = check_expr(&e, &schema());
        assert!(r.has_code(Code::CrossTypeComparison));
    }

    #[test]
    fn impossible_cast_is_flagged() {
        let e = Expr::col("active").cast(DataType::Float);
        let r = check_expr(&e, &schema());
        assert!(r.has_code(Code::ImpossibleCast));
    }

    #[test]
    fn predicate_checks_root_type_and_null_hazard() {
        // Non-boolean root.
        let r = check_predicate(&Expr::col("qty"), &schema());
        assert!(r.has_code(Code::NonBooleanPredicate));

        // Nullable comparison root: silent row drops.
        let r2 = check_predicate(&Expr::col("price").gt(Expr::lit(1.0)), &schema());
        assert!(r2.has_code(Code::NullPropagation));
        assert!(r2.is_clean());

        // Guarded by coalesce: no hazard.
        let guarded = Expr::Coalesce(vec![Expr::col("price"), Expr::lit(0.0)]).gt(Expr::lit(1.0));
        let r3 = check_predicate(&guarded, &schema());
        assert!(!r3.has_code(Code::NullPropagation), "{r3:?}");
    }

    #[test]
    fn bound_and_unbound_agree() {
        let e = Expr::col("price").gt(Expr::lit(10.0)).or(Expr::col("active"));
        let s = schema();
        let bound = e.bind(&s).expect("binds");
        assert_eq!(check_expr(&e, &s), check_bound(&bound, &s));
    }

    #[test]
    fn locus_paths_point_at_offending_node() {
        let e = Expr::col("name").add(Expr::lit(1)); // name is child 0
        let r = check_expr(&e, &schema());
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::IllTypedArithmetic)
            .expect("present");
        assert_eq!(d.locus.to_string(), "expr");
    }
}
