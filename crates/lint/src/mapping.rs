//! Mapping validation: check a [`Mapping`] artifact against the source schema
//! it will execute over, before any row is touched.
//!
//! The checks mirror what the executor ([`Mapping::apply`]) will actually do:
//! out-of-range bindings become runtime `TableError`s, arity mismatches
//! silently truncate the zip over target fields, and dtype problems surface
//! (or worse, *don't* surface) through the messy-number normalizer. Each
//! hazard gets a stable code so experiments can count catches per class.

use wrangler_mapping::Mapping;
use wrangler_table::{CastSafety, DataType, Schema};

use crate::diag::{Code, Diagnostic, Locus, Report};

/// Validate `mapping` against the schema of the source it will be applied to.
///
/// Returns a canonicalized [`Report`]; an empty report means the mapping is
/// statically sound for this source.
pub fn check_mapping(mapping: &Mapping, source: &Schema) -> Report {
    let mut report = Report::new();
    let target_len = mapping.target.len();

    // Arity: bindings and beliefs must line up with the target schema. The
    // executor zips and silently drops the excess, so this is a structural
    // corruption, not a style issue.
    if mapping.bindings.len() != target_len {
        report.push(Diagnostic::new(
            Code::BindingArityMismatch,
            Locus::Whole,
            format!(
                "mapping has {} bindings for {} target fields",
                mapping.bindings.len(),
                target_len
            ),
        ));
    }
    if mapping.binding_beliefs.len() != mapping.bindings.len() {
        report.push(Diagnostic::new(
            Code::BindingArityMismatch,
            Locus::Whole,
            format!(
                "mapping has {} binding beliefs for {} bindings",
                mapping.binding_beliefs.len(),
                mapping.bindings.len()
            ),
        ));
    }

    // Per-binding checks over the fields that do line up.
    let mut bound_targets_per_src: Vec<(usize, usize)> = Vec::new();
    for (ti, (field, binding)) in mapping
        .target
        .fields()
        .iter()
        .zip(&mapping.bindings)
        .enumerate()
    {
        let locus = Locus::Binding {
            target_index: ti,
            target_field: field.name.clone(),
        };
        match binding {
            Some(src) => {
                let Ok(src_field) = source.field(*src) else {
                    report.push(Diagnostic::new(
                        Code::BindingOutOfRange,
                        locus,
                        format!(
                            "binding refers to source column {src}, but the source has {} columns",
                            source.len()
                        ),
                    ));
                    continue;
                };
                bound_targets_per_src.push((*src, ti));
                match src_field.dtype.cast_safety(field.dtype) {
                    CastSafety::Lossless => {}
                    CastSafety::Lossy => report.push(Diagnostic::new(
                        Code::LossyBinding,
                        locus,
                        format!(
                            "source column `{}` ({}) feeds `{}` ({}); conversion is partial \
                             and unparseable values pass through unconverted",
                            src_field.name, src_field.dtype, field.name, field.dtype
                        ),
                    )),
                    CastSafety::Incompatible => report.push(Diagnostic::new(
                        Code::IncompatibleBinding,
                        locus,
                        format!(
                            "source column `{}` ({}) feeds `{}` ({}); no conversion exists, \
                             values will pass through with the wrong dtype",
                            src_field.name, src_field.dtype, field.name, field.dtype
                        ),
                    )),
                }
            }
            None => {
                if !field.nullable {
                    report.push(Diagnostic::new(
                        Code::UnboundRequired,
                        locus,
                        format!(
                            "non-nullable target field `{}` is unbound; its column will be all null",
                            field.name
                        ),
                    ));
                }
            }
        }
    }

    // Degenerate mapping: nothing bound at all.
    if target_len > 0 && mapping.bindings.iter().all(Option::is_none) {
        report.push(Diagnostic::new(
            Code::ZeroCoverage,
            Locus::Whole,
            "no target field is bound; applying this mapping yields only nulls".to_string(),
        ));
    }

    // One source column feeding target fields of irreconcilable dtypes: at
    // least one of the readings of that column must be wrong.
    bound_targets_per_src.sort_unstable();
    for window in bound_targets_per_src.windows(2) {
        let (src_a, ti_a) = window[0];
        let (src_b, ti_b) = window[1];
        if src_a != src_b {
            continue;
        }
        let (fa, fb) = match (mapping.target.field(ti_a), mapping.target.field(ti_b)) {
            (Ok(fa), Ok(fb)) => (fa, fb),
            _ => continue,
        };
        if dtypes_conflict(fa.dtype, fb.dtype) {
            report.push(Diagnostic::new(
                Code::ConflictingReuse,
                Locus::Binding {
                    target_index: ti_b,
                    target_field: fb.name.clone(),
                },
                format!(
                    "source column {src_a} feeds both `{}` ({}) and `{}` ({}); these dtypes \
                     cannot both be right",
                    fa.name, fa.dtype, fb.name, fb.dtype
                ),
            ));
        }
    }

    report.canonicalize();
    report
}

/// Two target dtypes conflict when neither subsumes the other: both concrete,
/// different, and unifiable only by collapsing to `Str`.
fn dtypes_conflict(a: DataType, b: DataType) -> bool {
    a != b
        && a != DataType::Null
        && b != DataType::Null
        && a != DataType::Str
        && b != DataType::Str
        && a.unify(b) == DataType::Str
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_mapping::mapping::target_schema;
    use wrangler_table::Field;
    use wrangler_uncertainty::Belief;

    fn source() -> Schema {
        Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("cost", DataType::Float),
            Field::new("stocked", DataType::Bool),
        ])
        .expect("unique names")
    }

    fn clean_mapping() -> Mapping {
        Mapping {
            target: target_schema(&[("sku", DataType::Str), ("price", DataType::Float)]),
            bindings: vec![Some(0), Some(1)],
            binding_beliefs: vec![Belief::from_prior(0.9), Belief::from_prior(0.8)],
            belief: Belief::from_prior(0.85),
        }
    }

    #[test]
    fn clean_mapping_passes() {
        let r = check_mapping(&clean_mapping(), &source());
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn out_of_range_binding_is_error() {
        let mut m = clean_mapping();
        m.bindings[1] = Some(17);
        let r = check_mapping(&m, &source());
        assert!(r.has_code(Code::BindingOutOfRange));
        assert!(!r.is_clean());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut m = clean_mapping();
        m.bindings.pop();
        let r = check_mapping(&m, &source());
        assert!(r.has_code(Code::BindingArityMismatch));
        assert!(!r.is_clean());

        let mut m2 = clean_mapping();
        m2.binding_beliefs.push(Belief::uninformed());
        assert!(check_mapping(&m2, &source()).has_code(Code::BindingArityMismatch));
    }

    #[test]
    fn dtype_safety_is_graded() {
        // Str source → Float target: lossy (messy-number recovery is partial).
        let mut m = clean_mapping();
        m.bindings = vec![Some(0), Some(0)];
        let r = check_mapping(&m, &source());
        assert!(r.has_code(Code::LossyBinding));
        assert!(r.is_clean(), "lossy is a warning, not an error");

        // Bool source → Float target: incompatible.
        let mut m2 = clean_mapping();
        m2.bindings = vec![Some(0), Some(2)];
        let r2 = check_mapping(&m2, &source());
        assert!(r2.has_code(Code::IncompatibleBinding));
    }

    #[test]
    fn unbound_required_field_is_flagged_as_warning() {
        let target = Schema::new(vec![
            Field::new("sku", DataType::Str),
            Field::required("price", DataType::Float),
        ])
        .expect("unique names");
        let m = Mapping {
            target,
            bindings: vec![Some(0), None],
            binding_beliefs: vec![Belief::from_prior(0.9), Belief::uninformed()],
            belief: Belief::from_prior(0.5),
        };
        let r = check_mapping(&m, &source());
        assert!(r.has_code(Code::UnboundRequired));
        // Nullability is informational (inferred, not enforced), so an
        // unbound required field warns rather than blocks.
        assert!(r.is_clean());
    }

    #[test]
    fn zero_coverage_flagged() {
        let mut m = clean_mapping();
        m.bindings = vec![None, None];
        let r = check_mapping(&m, &source());
        assert!(r.has_code(Code::ZeroCoverage));
    }

    #[test]
    fn conflicting_reuse_flagged() {
        let target = target_schema(&[("price", DataType::Float), ("stocked", DataType::Bool)]);
        let m = Mapping {
            target,
            bindings: vec![Some(1), Some(1)],
            binding_beliefs: vec![Belief::from_prior(0.9), Belief::from_prior(0.9)],
            belief: Belief::from_prior(0.5),
        };
        let r = check_mapping(&m, &source());
        assert!(r.has_code(Code::ConflictingReuse), "{r:?}");
    }

    #[test]
    fn report_is_deterministic() {
        let mut m = clean_mapping();
        m.bindings = vec![Some(99), Some(2)];
        let a = check_mapping(&m, &source());
        let b = check_mapping(&m, &source());
        assert_eq!(a, b);
    }
}
