//! Plan determinism audit.
//!
//! The analyzer cannot see into arbitrary code, so plan producers describe
//! each step of their pipeline as a [`PlanStep`]: a name plus the determinism
//! traits that matter — does the step draw randomness, and is that seeded?
//! does it iterate hash-keyed state into ordered output, and is that order
//! normalized? does it fan out to parallel workers, and is the merge
//! order-stable? [`audit_steps`] turns honest answers into diagnostics.
//!
//! This keeps `wrangler-lint` free of a dependency on the planner itself:
//! the core crate converts its `Plan` into `Vec<PlanStep>` and hands it over.

use crate::diag::{Code, Diagnostic, Locus, Report};

/// A neutral description of one step in an execution plan, carrying only the
/// traits the determinism audit cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Step name, used in diagnostics (e.g. `"mapping-generation"`).
    pub name: String,
    /// The step draws randomness (sampling, tie-breaking by coin flip).
    pub randomized: bool,
    /// The randomness is derived from a declared seed.
    pub seeded: bool,
    /// The step iterates hash-keyed state (`HashMap`/`HashSet`) directly into
    /// order-sensitive output.
    pub hash_iteration: bool,
    /// Hash-keyed iteration is normalized (sorted keys / `BTreeMap`) before
    /// affecting output order.
    pub order_normalized: bool,
    /// The step fans work out to parallel workers.
    pub parallel: bool,
    /// Worker results are merged in a canonical order (e.g. by source index),
    /// not completion order.
    pub merge_ordered: bool,
}

impl PlanStep {
    /// A fully deterministic step: no randomness, no hash iteration, serial.
    pub fn deterministic(name: impl Into<String>) -> PlanStep {
        PlanStep {
            name: name.into(),
            randomized: false,
            seeded: false,
            hash_iteration: false,
            order_normalized: false,
            parallel: false,
            merge_ordered: false,
        }
    }

    /// Mark the step as drawing randomness; `seeded` says whether from a
    /// declared seed.
    pub fn with_randomness(mut self, seeded: bool) -> PlanStep {
        self.randomized = true;
        self.seeded = seeded;
        self
    }

    /// Mark the step as iterating hash-keyed state; `normalized` says whether
    /// the order is canonicalized before it matters.
    pub fn with_hash_iteration(mut self, normalized: bool) -> PlanStep {
        self.hash_iteration = true;
        self.order_normalized = normalized;
        self
    }

    /// Mark the step as parallel; `merge_ordered` says whether the merge is
    /// order-stable.
    pub fn with_parallelism(mut self, merge_ordered: bool) -> PlanStep {
        self.parallel = true;
        self.merge_ordered = merge_ordered;
        self
    }
}

/// Audit a described plan for determinism hazards.
pub fn audit_steps(steps: &[PlanStep]) -> Report {
    let mut report = Report::new();
    for step in steps {
        let locus = Locus::Step(step.name.clone());
        if step.randomized && !step.seeded {
            report.push(Diagnostic::new(
                Code::UnseededStep,
                locus.clone(),
                format!("step `{}` draws randomness without a declared seed", step.name),
            ));
        }
        if step.hash_iteration && !step.order_normalized {
            report.push(Diagnostic::new(
                Code::HashOrderHazard,
                locus.clone(),
                format!(
                    "step `{}` iterates hash-keyed state into ordered output without \
                     normalizing the order",
                    step.name
                ),
            ));
        }
        if step.parallel && !step.merge_ordered {
            report.push(Diagnostic::new(
                Code::UnorderedMerge,
                locus,
                format!(
                    "step `{}` merges parallel worker output in completion order",
                    step.name
                ),
            ));
        }
    }
    report.canonicalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_plan_is_clean() {
        let steps = vec![
            PlanStep::deterministic("selection"),
            PlanStep::deterministic("mapping-generation")
                .with_hash_iteration(true)
                .with_parallelism(true)
                .with_randomness(true),
        ];
        let r = audit_steps(&steps);
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn unseeded_step_is_error() {
        let steps = vec![PlanStep::deterministic("sampling").with_randomness(false)];
        let r = audit_steps(&steps);
        assert!(r.has_code(Code::UnseededStep));
        assert!(!r.is_clean());
    }

    #[test]
    fn hash_order_hazard_is_error() {
        let steps = vec![PlanStep::deterministic("blocking").with_hash_iteration(false)];
        let r = audit_steps(&steps);
        assert!(r.has_code(Code::HashOrderHazard));
        assert!(!r.is_clean());
    }

    #[test]
    fn unordered_merge_is_warning() {
        let steps = vec![PlanStep::deterministic("fan-out").with_parallelism(false)];
        let r = audit_steps(&steps);
        assert!(r.has_code(Code::UnorderedMerge));
        assert!(r.is_clean());
    }

    #[test]
    fn audit_is_deterministic() {
        let steps = vec![
            PlanStep::deterministic("a").with_randomness(false),
            PlanStep::deterministic("b").with_hash_iteration(false),
        ];
        assert_eq!(audit_steps(&steps), audit_steps(&steps));
    }
}
