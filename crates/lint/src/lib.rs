//! `wrangler-lint` — static analysis of wrangling artifacts before execution.
//!
//! The cost/quality trade-offs of §2–§4 assume the wrangling *process* itself
//! is sound; in practice the artifacts the process runs — generated schema
//! mappings, user predicates, derived plans — carry defects that otherwise
//! surface mid-run as opaque table errors, or worse, never surface and
//! silently corrupt the product. This crate checks the artifacts statically:
//!
//! * [`mapping::check_mapping`] validates a mapping against the source schema
//!   it will execute over (binding ranges, arity, the
//!   [`wrangler_table::CastSafety`] lattice, unbound required fields,
//!   degenerate coverage);
//! * [`expr::check_expr`] / [`expr::check_predicate`] typecheck expressions
//!   against a schema (unknown columns, ill-typed arithmetic and logic,
//!   impossible casts, division by literal zero, null-propagation hazards);
//! * [`plan::audit_steps`] audits a described plan for determinism hazards
//!   (unseeded randomness, hash-order iteration, unordered parallel merges).
//!
//! All passes emit the same typed [`Diagnostic`] model and return canonical,
//! deterministic [`Report`]s, so a report is comparable across runs and
//! against a baseline ([`Report::newly_versus`]). The `wrangler-core`
//! pipeline runs these passes as a pre-flight gate (see [`GateMode`]);
//! [`corrupt`] provides the seeded defect injection that experiment E12 uses
//! to measure what fraction of each defect class the gate catches.

pub mod corrupt;
pub mod diag;
pub mod expr;
pub mod mapping;
pub mod plan;

pub use corrupt::{corrupt_predicate, inject_mapping_defect, DefectClass, Split};
pub use diag::{Code, Component, Diagnostic, GateMode, Locus, Report, Severity};
pub use expr::{check_bound, check_expr, check_predicate};
pub use mapping::check_mapping;
pub use plan::{audit_steps, PlanStep};

/// Analyze one source's mapping plus the shared plan description: the unit of
/// pre-flight work the core pipeline runs per selected source.
pub fn preflight(
    mapping: &wrangler_mapping::Mapping,
    source_schema: &wrangler_table::Schema,
    steps: &[PlanStep],
) -> Report {
    let mut report = check_mapping(mapping, source_schema);
    report.merge(audit_steps(steps));
    report.canonicalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_mapping::{mapping::target_schema, Mapping};
    use wrangler_table::{DataType, Field, Schema};
    use wrangler_uncertainty::Belief;

    #[test]
    fn preflight_combines_mapping_and_plan_findings() {
        let source = Schema::new(vec![Field::new("code", DataType::Str)]).expect("unique");
        let m = Mapping {
            target: target_schema(&[("sku", DataType::Str)]),
            bindings: vec![Some(5)],
            binding_beliefs: vec![Belief::from_prior(0.9)],
            belief: Belief::from_prior(0.9),
        };
        let steps = vec![PlanStep::deterministic("sampling").with_randomness(false)];
        let r = preflight(&m, &source, &steps);
        assert!(r.has_code(Code::BindingOutOfRange));
        assert!(r.has_code(Code::UnseededStep));
        assert!(!r.is_clean());
    }
}
