//! Seeded defect injection for analyzer evaluation (experiment E12).
//!
//! Each [`DefectClass`] is a realistic corruption of a wrangling artifact —
//! the kind a buggy mapping generator, a schema drift, or a hand-edited
//! pipeline would introduce. Injection is a pure function of `(artifact,
//! class, seed)`, so experiments are reproducible without any RNG crate: the
//! only randomness is a splitmix64 stream derived from the seed.

use wrangler_mapping::Mapping;
use wrangler_table::{DataType, Expr, Schema};
use wrangler_uncertainty::Belief;

/// The defect classes injected by E12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefectClass {
    /// A binding's source column index is bumped past the source arity.
    OutOfRangeBinding,
    /// A bound target field's dtype is flipped to a worse-cast type.
    DtypeFlip,
    /// The binding vector's arity is corrupted (entry dropped or appended).
    ArityCorruption,
    /// Every binding is removed, leaving a zero-coverage mapping.
    UnbindAll,
    /// A well-typed predicate is rewritten into an ill-typed one.
    IllTypedPredicate,
    /// A column dropped from the output projection is still consumed by a
    /// downstream operator — visible only to whole-plan liveness analysis.
    DeadColumnConsumed,
    /// A filter forced below a lossy cast boundary, where row verdicts can
    /// diverge — visible only to whole-plan pushdown-safety analysis.
    LossyPushdown,
    /// Map-generation work duplicated across sources with the same inferred
    /// schema — visible only to whole-plan common-subexpression detection.
    DuplicateMapWork,
}

impl DefectClass {
    /// The classes that corrupt mapping artifacts (everything except
    /// [`DefectClass::IllTypedPredicate`]).
    pub const MAPPING_CLASSES: [DefectClass; 4] = [
        DefectClass::OutOfRangeBinding,
        DefectClass::DtypeFlip,
        DefectClass::ArityCorruption,
        DefectClass::UnbindAll,
    ];

    /// The classes that corrupt whole-plan structure; injection sites live in
    /// `wrangler-plan` (the IR layer), which this crate cannot depend on.
    pub const PLAN_CLASSES: [DefectClass; 3] = [
        DefectClass::DeadColumnConsumed,
        DefectClass::LossyPushdown,
        DefectClass::DuplicateMapWork,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            DefectClass::OutOfRangeBinding => "out-of-range-binding",
            DefectClass::DtypeFlip => "dtype-flip",
            DefectClass::ArityCorruption => "arity-corruption",
            DefectClass::UnbindAll => "unbind-all",
            DefectClass::IllTypedPredicate => "ill-typed-predicate",
            DefectClass::DeadColumnConsumed => "dead-column-consumed",
            DefectClass::LossyPushdown => "lossy-pushdown",
            DefectClass::DuplicateMapWork => "duplicate-map-work",
        }
    }
}

/// Minimal deterministic RNG (splitmix64); good enough for picking injection
/// sites, and keeps this crate free of an RNG dependency. Public so the plan
/// layer's defect injector draws from the same stream family.
pub struct Split(u64);

impl Split {
    /// Stream seeded by `seed`.
    pub fn new(seed: u64) -> Split {
        Split(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64 random bits.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, infallible
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Inject `class` into a copy of `mapping`, which targets a source with
/// schema `source`. Returns `None` when the mapping offers no injection site
/// for the class (e.g. dtype flip on a mapping with no bound fields).
pub fn inject_mapping_defect(
    mapping: &Mapping,
    source: &Schema,
    class: DefectClass,
    seed: u64,
) -> Option<Mapping> {
    let mut rng = Split::new(seed);
    let mut m = mapping.clone();
    let bound: Vec<usize> = m
        .bindings
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.map(|_| i))
        .collect();
    match class {
        DefectClass::OutOfRangeBinding => {
            let site = *bound.get(rng.below(bound.len()))?;
            m.bindings[site] = Some(source.len() + 1 + rng.below(7));
            Some(m)
        }
        DefectClass::DtypeFlip => {
            // Pick a bound field whose dtype can be flipped to a strictly
            // worse cast from its source column's type.
            let mut candidates: Vec<(usize, DataType)> = Vec::new();
            for &ti in &bound {
                let src = m.bindings[ti]?;
                let src_dtype = source.field(src).ok()?.dtype;
                let cur = m.target.field(ti).ok()?.dtype;
                let cur_safety = src_dtype.cast_safety(cur);
                let flip = [DataType::Bool, DataType::Int, DataType::Float]
                    .into_iter()
                    .filter(|d| *d != cur)
                    .max_by_key(|d| src_dtype.cast_safety(*d));
                if let Some(flip) = flip {
                    if src_dtype.cast_safety(flip) > cur_safety {
                        candidates.push((ti, flip));
                    }
                }
            }
            let (site, flip) = *candidates.get(rng.below(candidates.len()))?;
            let mut fields = m.target.fields().to_vec();
            fields[site].dtype = flip;
            m.target = Schema::new(fields).ok()?;
            Some(m)
        }
        DefectClass::ArityCorruption => {
            if m.bindings.is_empty() {
                return None;
            }
            if rng.next().is_multiple_of(2) {
                m.bindings.pop();
                m.binding_beliefs.pop();
            } else {
                m.bindings.push(None);
                m.binding_beliefs.push(Belief::uninformed());
            }
            Some(m)
        }
        DefectClass::UnbindAll => {
            if bound.is_empty() {
                return None;
            }
            for b in &mut m.bindings {
                *b = None;
            }
            for bel in &mut m.binding_beliefs {
                *bel = Belief::uninformed();
            }
            Some(m)
        }
        // Predicate and whole-plan classes have no mapping injection site;
        // the former is handled by `corrupt_predicate`, the latter by
        // `wrangler-plan`'s IR-level injector.
        DefectClass::IllTypedPredicate
        | DefectClass::DeadColumnConsumed
        | DefectClass::LossyPushdown
        | DefectClass::DuplicateMapWork => None,
    }
}

/// Rewrite a predicate over `schema` into an ill-typed one. Returns `None`
/// when the schema offers no suitable columns.
pub fn corrupt_predicate(pred: &Expr, schema: &Schema, seed: u64) -> Option<Expr> {
    let mut rng = Split::new(seed);
    let str_cols: Vec<&str> = schema
        .fields()
        .iter()
        .filter(|f| f.dtype == DataType::Str)
        .map(|f| f.name.as_str())
        .collect();
    let non_bool: Vec<&str> = schema
        .fields()
        .iter()
        .filter(|f| !matches!(f.dtype, DataType::Bool | DataType::Null))
        .map(|f| f.name.as_str())
        .collect();
    match rng.next() % 3 {
        // Arithmetic over a string column: every non-null row errors.
        0 => {
            let c = *str_cols.get(rng.below(str_cols.len()))?;
            Some(Expr::col(c).add(Expr::lit(1)).gt(Expr::lit(0)))
        }
        // Boolean connective over a non-boolean operand.
        1 => {
            let c = *non_bool.get(rng.below(non_bool.len()))?;
            Some(pred.clone().and(Expr::col(c)))
        }
        // Non-boolean root: the predicate evaluates to a value, not a truth.
        _ => {
            let c = *non_bool.get(rng.below(non_bool.len()))?;
            Some(Expr::col(c))
        }
    }
}

/// True if the flip chosen for `src → target` would at least degrade the
/// cast, used by tests to assert injection strength.
pub fn degrades(src: DataType, before: DataType, after: DataType) -> bool {
    src.cast_safety(after) > src.cast_safety(before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use crate::mapping::check_mapping;
    use wrangler_mapping::mapping::target_schema;
    use wrangler_table::Field;

    fn source() -> Schema {
        Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("cost", DataType::Float),
        ])
        .expect("unique names")
    }

    fn mapping() -> Mapping {
        Mapping {
            target: target_schema(&[("sku", DataType::Str), ("price", DataType::Float)]),
            bindings: vec![Some(0), Some(1)],
            binding_beliefs: vec![Belief::from_prior(0.9), Belief::from_prior(0.8)],
            belief: Belief::from_prior(0.85),
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let m = mapping();
        let s = source();
        for class in DefectClass::MAPPING_CLASSES {
            let a = inject_mapping_defect(&m, &s, class, 42).map(|x| x.bindings);
            let b = inject_mapping_defect(&m, &s, class, 42).map(|x| x.bindings);
            assert_eq!(a, b, "{class:?}");
        }
    }

    #[test]
    fn each_mapping_class_yields_its_code() {
        let m = mapping();
        let s = source();
        let baseline = check_mapping(&m, &s);
        for (class, code) in [
            (DefectClass::OutOfRangeBinding, Code::BindingOutOfRange),
            (DefectClass::ArityCorruption, Code::BindingArityMismatch),
            (DefectClass::UnbindAll, Code::ZeroCoverage),
        ] {
            let bad = inject_mapping_defect(&m, &s, class, 7).expect("site exists");
            let report = check_mapping(&bad, &s);
            assert!(report.has_code(code), "{class:?}: {report:?}");
            assert!(
                !report.newly_versus(&baseline).is_empty(),
                "{class:?} must add findings over baseline"
            );
        }
    }

    #[test]
    fn dtype_flip_degrades_cast() {
        let m = mapping();
        let s = source();
        let baseline = check_mapping(&m, &s);
        let bad = inject_mapping_defect(&m, &s, DefectClass::DtypeFlip, 7).expect("site exists");
        let report = check_mapping(&bad, &s);
        assert!(!report.newly_versus(&baseline).is_empty(), "{report:?}");
    }

    #[test]
    fn predicate_corruption_is_caught() {
        use crate::expr::check_predicate;
        let s = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("price", DataType::Float),
        ])
        .expect("unique names");
        let clean = Expr::col("price").gt(Expr::lit(1.0));
        for seed in 0..6 {
            let bad = corrupt_predicate(&clean, &s, seed).expect("columns exist");
            let r = check_predicate(&bad, &s);
            assert!(
                r.has_code(Code::IllTypedArithmetic)
                    || r.has_code(Code::IllTypedLogic)
                    || r.has_code(Code::NonBooleanPredicate),
                "seed {seed}: {r:?}"
            );
        }
    }

    #[test]
    fn degrades_helper() {
        assert!(degrades(DataType::Float, DataType::Float, DataType::Bool));
        assert!(!degrades(DataType::Float, DataType::Int, DataType::Int));
    }
}
