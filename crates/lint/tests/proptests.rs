//! Property tests for the static analyzer: a well-typed mapping never
//! triggers the gate, every seeded corruption class yields its expected
//! diagnostic code, and the verdict is a pure function of (artifact, seed).

use proptest::prelude::*;
use wrangler_lint::{
    check_mapping, check_predicate, corrupt_predicate, inject_mapping_defect, Code, DefectClass,
    Severity,
};
use wrangler_mapping::Mapping;
use wrangler_table::{DataType, Expr, Field, Schema};
use wrangler_uncertainty::Belief;

fn arb_dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Str),
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Bool),
    ]
}

/// A well-typed pair (source schema, mapping): each target field is bound to
/// a distinct source column of the identical dtype.
fn well_typed(dtypes: &[DataType]) -> (Schema, Mapping) {
    let source = Schema::new(
        dtypes
            .iter()
            .enumerate()
            .map(|(i, &d)| Field::new(format!("s{i}"), d))
            .collect(),
    )
    .expect("generated names are unique");
    let target = Schema::new(
        dtypes
            .iter()
            .enumerate()
            .map(|(i, &d)| Field::new(format!("t{i}"), d))
            .collect(),
    )
    .expect("generated names are unique");
    let n = dtypes.len();
    let mapping = Mapping {
        target,
        bindings: (0..n).map(Some).collect(),
        binding_beliefs: vec![Belief::from_prior(0.9); n],
        belief: Belief::from_prior(0.9),
    };
    (source, mapping)
}

proptest! {
    #[test]
    fn well_typed_mapping_always_passes(
        dtypes in prop::collection::vec(arb_dtype(), 1..6),
    ) {
        let (source, mapping) = well_typed(&dtypes);
        let report = check_mapping(&mapping, &source);
        prop_assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn every_corruption_class_yields_its_code(
        dtypes in prop::collection::vec(arb_dtype(), 1..6),
        seed in any::<u64>(),
    ) {
        let (source, mapping) = well_typed(&dtypes);
        let baseline = check_mapping(&mapping, &source);
        for (class, codes) in [
            (DefectClass::OutOfRangeBinding, &[Code::BindingOutOfRange][..]),
            (DefectClass::ArityCorruption, &[Code::BindingArityMismatch][..]),
            (DefectClass::UnbindAll, &[Code::ZeroCoverage][..]),
            (
                DefectClass::DtypeFlip,
                &[Code::LossyBinding, Code::IncompatibleBinding][..],
            ),
        ] {
            // A fully bound identity mapping offers a site for every class.
            let bad = inject_mapping_defect(&mapping, &source, class, seed);
            let Some(bad) = bad else {
                prop_assert!(false, "{class:?} found no injection site");
                unreachable!()
            };
            let report = check_mapping(&bad, &source);
            prop_assert!(
                codes.iter().any(|&c| report.has_code(c)),
                "{class:?}: expected one of {codes:?} in {report:?}"
            );
            prop_assert!(
                !report.newly_versus(&baseline).is_empty(),
                "{class:?}: no finding beyond baseline"
            );
        }
    }

    #[test]
    fn verdict_is_deterministic_per_seed(
        dtypes in prop::collection::vec(arb_dtype(), 1..6),
        seed in any::<u64>(),
    ) {
        let (source, mapping) = well_typed(&dtypes);
        for class in DefectClass::MAPPING_CLASSES {
            let a = inject_mapping_defect(&mapping, &source, class, seed)
                .map(|m| check_mapping(&m, &source));
            let b = inject_mapping_defect(&mapping, &source, class, seed)
                .map(|m| check_mapping(&m, &source));
            prop_assert_eq!(a, b, "{:?}", class);
        }
    }

    #[test]
    fn corrupted_predicate_is_rejected_deterministically(seed in any::<u64>()) {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("price", DataType::Float),
        ])
        .expect("unique names");
        let clean = Expr::col("price").gt(Expr::lit(1.0));
        prop_assert!(check_predicate(&clean, &schema).is_clean());
        let bad = corrupt_predicate(&clean, &schema, seed);
        prop_assert!(bad.is_some(), "schema offers corruption sites");
        let bad = bad.expect("just checked");
        let report = check_predicate(&bad, &schema);
        prop_assert!(
            report.diagnostics().iter().any(|d| d.severity == Severity::Error),
            "corruption must be deny-grade: {report:?}"
        );
        prop_assert_eq!(report, check_predicate(&bad, &schema));
    }
}
