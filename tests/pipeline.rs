//! Integration tests: the full pipeline across crates, on seeded synthetic
//! fleets. These assert the *shape* results documented in EXPERIMENTS.md.

use data_wrangler::core::baseline::ManualEtl;
use data_wrangler::core::eval::score_against_truth;
use data_wrangler::prelude::*;
use data_wrangler::sources::synthetic::generate_fleet;

fn fleet(seed: u64) -> data_wrangler::sources::SyntheticFleet {
    generate_fleet(
        &FleetConfig {
            num_products: 80,
            num_sources: 12,
            now: 15,
            coverage: (0.4, 0.9),
            error_rate: (0.02, 0.25),
            null_rate: (0.0, 0.08),
            staleness: (0, 8),
            ..FleetConfig::default()
        },
        seed,
    )
}

fn session(fleet: &data_wrangler::sources::SyntheticFleet, user: UserContext) -> Wrangler {
    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .unwrap();
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let mut cols: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec())
        .collect();
    cols.push(vec![Value::Null; catalog.num_rows()]);
    let sample = Table::from_columns(Schema::new(fields).unwrap(), cols).unwrap();
    let mut w = Wrangler::new(user, ctx, sample);
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    w
}

#[test]
fn deterministic_given_seed() {
    let f = fleet(5);
    let out1 = session(&f, UserContext::balanced("t")).wrangle().unwrap();
    let out2 = session(&f, UserContext::balanced("t")).wrangle().unwrap();
    assert_eq!(out1.entities, out2.entities);
    assert_eq!(out1.table, out2.table);
    assert_eq!(out1.selected_sources, out2.selected_sources);
}

#[test]
fn automated_pipeline_reaches_usable_quality() {
    let f = fleet(7);
    let mut w = session(&f, UserContext::balanced("t"));
    let out = w.wrangle().unwrap();
    let s = score_against_truth(&out.table, &f.truth, 0.005).unwrap();
    assert!(s.coverage > 0.9, "coverage {}", s.coverage);
    assert!(
        s.price_accuracy > 0.4,
        "price accuracy {}",
        s.price_accuracy
    );
    // Entity count near the true product count (no blow-up, no collapse).
    assert!(
        out.entities >= 70 && out.entities <= 130,
        "{} entities",
        out.entities
    );
}

#[test]
fn contexts_shape_the_result_differently() {
    let f = fleet(11);
    let out_acc = session(&f, UserContext::accuracy_first())
        .wrangle()
        .unwrap();
    let out_com = session(&f, UserContext::completeness_first())
        .wrangle()
        .unwrap();
    let s_acc = score_against_truth(&out_acc.table, &f.truth, 0.005).unwrap();
    let s_com = score_against_truth(&out_com.table, &f.truth, 0.005).unwrap();
    // The accuracy-first context delivers more accurate prices; the
    // completeness-first context uses at least as many sources.
    assert!(
        s_acc.price_accuracy >= s_com.price_accuracy,
        "acc {} vs com {}",
        s_acc.price_accuracy,
        s_com.price_accuracy
    );
    assert!(out_com.selected_sources.len() >= out_acc.selected_sources.len());
}

#[test]
fn feedback_improves_quality_at_bounded_cost() {
    let f = fleet(13);
    let mut w = session(&f, UserContext::completeness_first());
    let out0 = w.wrangle().unwrap();
    let s0 = score_against_truth(&out0.table, &f.truth, 0.005).unwrap();
    let price_attr = w.target().index_of("price").unwrap();
    // Oracle-played analyst flags 20 wrong prices.
    let mut flagged = 0;
    for row in 0..out0.table.num_rows() {
        if flagged == 20 {
            break;
        }
        if let (Some(sku), Some(p)) = (
            out0.table.get_named(row, "sku").unwrap().as_str(),
            out0.table.get_named(row, "price").unwrap().as_f64(),
        ) {
            if !f.truth.price_is_correct(sku, p, 0.005) {
                w.give_feedback(FeedbackItem::expert(
                    FeedbackTarget::Value {
                        entity: row,
                        attr: price_attr,
                        value: None,
                    },
                    Verdict::Negative,
                    1.0,
                ));
                flagged += 1;
            }
        }
    }
    let work_before = w.working.work;
    let out1 = w.rewrangle().unwrap();
    let s1 = score_against_truth(&out1.table, &f.truth, 0.005).unwrap();
    let delta = w.working.work - work_before;
    assert!(
        s1.price_accuracy >= s0.price_accuracy,
        "feedback must not hurt: {} -> {}",
        s0.price_accuracy,
        s1.price_accuracy
    );
    // And it was incremental: no remapping, no re-ER.
    assert_eq!(delta.mappings_generated, 0);
    assert_eq!(delta.er_pairs, 0);
}

#[test]
fn automated_system_beats_manual_etl_after_drift() {
    // The manual baseline is specified once against the original schemas.
    // Then half the sources "redesign" (schema drift): the specs rot while
    // the automated system re-maps on its own.
    let f = fleet(17);
    let mut etl = ManualEtl::new(
        Schema::new(vec![
            wrangler_table::Field::new("sku", DataType::Str),
            wrangler_table::Field::new("price", DataType::Float),
        ])
        .unwrap(),
        5.0,
    );
    // Expert correctly specifies every source (paying for each).
    let canonical = ["sku", "name", "brand", "category", "price", "stock"];
    for (i, s) in f.registry.iter().enumerate() {
        etl.specify_by_inspection(i, &s.table, &|col| {
            // The expert recognizes drifted names via the same synonym table
            // the sources drew from.
            let ont = Ontology::ecommerce();
            ont.resolve(col).and_then(|c| {
                let name = ont.concept(c).name.clone();
                canonical.contains(&name.as_str()).then_some(name)
            })
        });
    }
    let tables: Vec<&Table> = f.registry.iter().map(|s| &s.table).collect();
    let etl_before = etl.run(&tables).unwrap();
    assert!(etl_before.num_rows() > 50, "spec'd ETL works initially");
    assert!(
        etl.effort_spent >= 12.0 * 5.0,
        "manual effort is linear in sources"
    );

    // Drift: regenerate the fleet with different schema noise (same world
    // seed would be ideal; different seed approximates a redesign wave).
    let drifted = fleet(18);
    let tables2: Vec<&Table> = drifted.registry.iter().map(|s| &s.table).collect();
    let etl_after = etl.run(&tables2).unwrap();
    // The automated system handles the drifted fleet with zero manual effort.
    let mut w = session(&drifted, UserContext::balanced("t"));
    let out = w.wrangle().unwrap();
    let s_auto = score_against_truth(&out.table, &drifted.truth, 0.01).unwrap();
    let s_etl = score_against_truth(&etl_after, &drifted.truth, 0.01).unwrap_or(
        data_wrangler::core::eval::Scores {
            coverage: 0.0,
            price_accuracy: 0.0,
            correct_price_yield: 0.0,
            f1: 0.0,
        },
    );
    assert!(
        s_auto.coverage > s_etl.coverage || s_auto.correct_price_yield > s_etl.correct_price_yield,
        "auto {s_auto:?} vs etl {s_etl:?}"
    );
}

#[test]
fn irrelevant_sources_are_not_selected() {
    let cfg = FleetConfig {
        num_products: 60,
        num_sources: 10,
        irrelevant_rate: 0.5,
        ..FleetConfig::default()
    };
    let f = generate_fleet(&cfg, 23);
    let mut w = session(&f, UserContext::accuracy_first());
    let out = w.wrangle().unwrap();
    for id in &out.selected_sources {
        let i = id.0 as usize;
        assert!(
            !f.latents[i].irrelevant,
            "irrelevant source {} selected (relevance should exclude it)",
            id
        );
    }
}

#[test]
fn budget_caps_source_access() {
    let f = fleet(29);
    let mut w = session(&f, UserContext::accuracy_first().with_budget(3.0));
    let out = w.wrangle().unwrap();
    let spent: f64 = out
        .selected_sources
        .iter()
        .map(|id| f.registry.get(*id).unwrap().meta.access_cost)
        .sum();
    assert!(spent <= 3.0 + 1e-9, "spent {spent} over budget");
}
