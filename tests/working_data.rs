//! Integration: the Working Data surface — context switching mid-session,
//! provenance export, and uncertain analytics over wrangled output.

use data_wrangler::core::provenance::provenance_table;
use data_wrangler::prelude::*;
use data_wrangler::sources::synthetic::generate_fleet;
use data_wrangler::table::ops;

fn session(user: UserContext) -> (Wrangler, data_wrangler::sources::SyntheticFleet) {
    let fleet = generate_fleet(
        &FleetConfig {
            num_products: 60,
            num_sources: 10,
            now: 12,
            error_rate: (0.05, 0.25),
            staleness: (0, 6),
            ..FleetConfig::default()
        },
        31,
    );
    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .unwrap();
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let mut cols: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec())
        .collect();
    cols.push(vec![Value::Null; catalog.num_rows()]);
    let sample = Table::from_columns(Schema::new(fields).unwrap(), cols).unwrap();
    let mut w = Wrangler::new(user, ctx, sample);
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    (w, fleet)
}

#[test]
fn switching_contexts_changes_the_tradeoff_in_one_session() {
    let (mut w, _) = session(UserContext::completeness_first());
    let complete = w.wrangle().unwrap();
    let delivered = |t: &Table| {
        let col = t.column_named("price").unwrap();
        col.iter().filter(|v| !v.is_null()).count() as f64 / col.len().max(1) as f64
    };
    let d_complete = delivered(&complete.table);

    // Same session, new hat: the analyst switches to routine comparison.
    w.set_user_context(UserContext::accuracy_first());
    let accurate = w.wrangle().unwrap();
    let d_accurate = delivered(&accurate.table);
    assert!(
        d_accurate < d_complete,
        "accuracy-first must withhold more: {d_accurate} vs {d_complete}"
    );
    assert!(accurate.selected_sources.len() <= complete.selected_sources.len());
    // Switching back restores the permissive behaviour.
    w.set_user_context(UserContext::completeness_first());
    let back = w.wrangle().unwrap();
    assert!((delivered(&back.table) - d_complete).abs() < 0.15);
}

#[test]
fn provenance_is_queryable_working_data() {
    let (mut w, _) = session(UserContext::completeness_first());
    let out = w.wrangle().unwrap();
    let prov = provenance_table(&w).unwrap();
    assert!(
        prov.num_rows() > out.entities,
        "at least one claim per entity"
    );
    // "Which source dissents most often?" — a relational question.
    let dissent = ops::filter(&prov, &Expr::col("supports").eq(Expr::lit(false))).unwrap();
    let by_source =
        ops::group_by(&dissent, &["source"], &[(ops::Agg::CountAll, "entity")]).unwrap();
    let sorted = ops::sort_by(&by_source, &["count_all_entity"]).unwrap();
    assert!(sorted.num_rows() >= 1);
}

#[test]
fn uncertain_view_supports_decision_queries() {
    let (mut w, fleet) = session(UserContext::completeness_first());
    let out = w.wrangle().unwrap();
    let view = UncertainView::new(out.table.clone()).unwrap();
    assert_eq!(view.len(), out.table.num_rows());
    // Expected number of catalog products priced above the median base price.
    let est = view
        .estimate_count(&Expr::col("price").gt(Expr::lit(100.0)), 3, 4000)
        .unwrap();
    assert!(est.mean > 0.0 && est.mean < out.table.num_rows() as f64);
    // The estimate is consistent with a deterministic count at the extremes:
    // certainly fewer than "all rows" and at least the fully-confident ones.
    let confident_over = (0..out.table.num_rows())
        .filter(|&r| {
            out.table
                .get_named(r, "price")
                .unwrap()
                .as_f64()
                .is_some_and(|p| p > 100.0)
                && out.table.get_named(r, "_confidence").unwrap().as_f64() == Some(1.0)
        })
        .count() as f64;
    assert!(est.mean >= confident_over - 1e-9);
    let _ = fleet;
}
