//! Integration: web-style extraction feeding the wrangler — pages in,
//! wrangled entities out — including a mid-session site redesign handled by
//! informed wrapper repair (the §4.1 extraction/integration co-design).

use data_wrangler::extract::induce::Annotation;
use data_wrangler::extract::repair::{drift_detected, repair_wrapper, RepairConfig};
use data_wrangler::extract::{induce_wrapper, Template};
use data_wrangler::prelude::*;
use data_wrangler::sources::locations::{generate_locations, CheckinConfig};

/// Two "sites" render the same product world with different templates; we
/// induce wrappers, extract, and wrangle the extractions.
#[test]
fn pages_to_wrangled_entities() {
    let world = Table::literal(
        &["sku", "name", "price"],
        (0..30)
            .map(|i| {
                vec![
                    Value::from(format!("P{i:03}")),
                    Value::from(format!("Item Number {i}")),
                    Value::Float(10.0 + i as f64),
                ]
            })
            .collect(),
    )
    .unwrap();

    let mut wrangler = {
        let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
        ctx.add_master("product", world.clone(), "sku").unwrap();
        Wrangler::new(UserContext::balanced("extract-e2e"), ctx, world.clone())
    };

    for (si, seed) in [3u64, 9].iter().enumerate() {
        let template = Template::listing(&["sku", "name", "price"]).drift(*seed);
        let page = template.render(&world);
        let ann = |i: usize| {
            Annotation::of(&[
                ("sku", &world.get_named(i, "sku").unwrap().render()),
                ("name", &world.get_named(i, "name").unwrap().render()),
                ("price", &world.get_named(i, "price").unwrap().render()),
            ])
        };
        let wrapper = induce_wrapper(&page, &[ann(2), ann(20)]).expect("induce");
        let extraction = wrapper.extract(&page).expect("extract");
        assert_eq!(extraction.records_found, 30);
        wrangler.add_source(
            SourceMeta::new(SourceId(si as u32), format!("site{si}")),
            extraction.table,
        );
    }
    let out = wrangler.wrangle().unwrap();
    assert_eq!(
        out.entities, 30,
        "two clean extractions of the same world merge 1:1"
    );
    for r in 0..out.table.num_rows() {
        assert!(!out.table.get_named(r, "price").unwrap().is_null());
    }
}

/// The Example 3 loop as a test: check-ins cleaned against site data that
/// survives a redesign via informed repair.
#[test]
fn locations_repair_loop() {
    let cfg = CheckinConfig {
        num_businesses: 40,
        num_checkins: 150,
        wrong_geo_rate: 0.1,
        misspell_rate: 0.1,
        fantasy_rate: 0.05,
    };
    let world = generate_locations(&cfg, 21);
    let sites = world.website_table();
    let template = Template::listing(&["url", "name", "address", "city", "lat", "lon"]);
    let page = template.render(&sites);
    let ann = |i: usize| {
        Annotation::of(&[
            ("url", &sites.get_named(i, "url").unwrap().render()),
            ("name", &sites.get_named(i, "name").unwrap().render()),
            ("lat", &sites.get_named(i, "lat").unwrap().render()),
            ("lon", &sites.get_named(i, "lon").unwrap().render()),
        ])
    };
    let wrapper = induce_wrapper(&page, &[ann(1), ann(15)]).expect("induce");
    let first = wrapper.extract(&page).expect("extract");
    assert_eq!(first.records_found, 40);

    // Redesign; old wrapper dies; informed repair resurrects it.
    let new_page = template.drift(77).render(&sites);
    let broken = wrapper.extract(&new_page).expect("extract");
    assert!(drift_detected(&broken, 0.5));
    let outcome = repair_wrapper(
        &wrapper,
        &new_page,
        &first.table,
        &RepairConfig {
            stable_columns: vec!["url".into(), "name".into()],
            ..RepairConfig::default()
        },
    )
    .expect("informed repair");
    let restored = outcome.wrapper.extract(&new_page).expect("extract");
    assert_eq!(restored.records_found, 40);
    // The numeric geo fields were recovered without any value matching.
    let lat_ok = (0..40)
        .filter(|&i| {
            restored
                .table
                .get_named(i, "lat")
                .unwrap()
                .as_f64()
                .is_some()
        })
        .count();
    assert!(lat_ok >= 38, "lat recovered for {lat_ok}/40");

    // Fantasy check-ins have no site to verify against.
    let urls = restored.table.column_named("url").unwrap();
    let mut fantasy_flagged = 0;
    for i in 0..world.checkins.num_rows() {
        let u = world.checkins.get_named(i, "url").unwrap();
        match u.as_str() {
            None => fantasy_flagged += 1,
            Some(u) => assert!(urls.iter().any(|v| v.as_str() == Some(u))),
        }
    }
    assert_eq!(
        fantasy_flagged,
        world.defects.iter().filter(|d| d.2).count()
    );
}
