//! `data-wrangler` — facade crate re-exporting the vada-wrangler workspace.
//!
//! A faithful, executable rendering of the architecture proposed in
//! *Data Wrangling for Big Data: Challenges and Opportunities* (Furche,
//! Gottlob, Libkin, Orsi, Paton — EDBT 2016): context-aware, highly
//! automated, pay-as-you-go data wrangling.
//!
//! ```
//! use data_wrangler::prelude::*;
//!
//! // Two messy sources about the same products.
//! let a = Table::literal(
//!     &["code", "title", "cost"],
//!     vec![
//!         vec!["p1".into(), "Turbo Widget".into(), "$9.99".into()],
//!         vec!["p2".into(), "Mini Gadget".into(), "$24.00".into()],
//!     ],
//! ).unwrap();
//! let b = Table::literal(
//!     &["sku", "name", "price"],
//!     vec![vec!["p2".into(), "Mini Gadget".into(), Value::Float(23.5)]],
//! ).unwrap();
//!
//! // The catalog we already own (master data) defines the target schema.
//! let catalog = Table::literal(
//!     &["sku", "name", "price"],
//!     vec![
//!         vec!["p1".into(), "Turbo Widget".into(), Value::Null],
//!         vec!["p2".into(), "Mini Gadget".into(), Value::Null],
//!     ],
//! ).unwrap();
//!
//! let ctx = DataContext::with_ontology(Ontology::ecommerce());
//! let mut w = Wrangler::new(UserContext::balanced("demo"), ctx, catalog);
//! w.add_source(SourceMeta::new(SourceId(0), "shopA"), a);
//! w.add_source(SourceMeta::new(SourceId(0), "shopB"), b);
//! let out = w.wrangle().unwrap();
//! assert_eq!(out.entities, 2);
//! ```

pub use wrangler_context as context;
pub use wrangler_core as core;
pub use wrangler_extract as extract;
pub use wrangler_feedback as feedback;
pub use wrangler_fusion as fusion;
pub use wrangler_lint as lint;
pub use wrangler_mapping as mapping;
pub use wrangler_match as matching;
pub use wrangler_obs as obs;
pub use wrangler_quality as quality;
pub use wrangler_resolve as resolve;
pub use wrangler_sources as sources;
pub use wrangler_table as table;
pub use wrangler_uncertainty as uncertainty;

/// The most common imports in one place.
pub mod prelude {
    pub use wrangler_context::{Criterion, DataContext, Ontology, QualityVector, UserContext};
    pub use wrangler_core::{
        suggest_feedback_targets, ChaosPolicy, CheckpointStore, ContainPolicy, ContainmentReport,
        OptMode, Plan, PlanProgram, UncertainView, WrangleOutcome, Wrangler,
    };
    pub use wrangler_feedback::{FeedbackItem, FeedbackTarget, RoutingMode, Verdict};
    pub use wrangler_lint::{Diagnostic, GateMode, Report, Severity};
    pub use wrangler_obs::{MetricsReport, ObsMode, Telemetry};
    pub use wrangler_sources::{FaultProfile, FleetConfig, SourceId, SourceMeta, SourceRegistry};
    pub use wrangler_table::{DataType, Expr, Schema, Table, Value};
    pub use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};
}
