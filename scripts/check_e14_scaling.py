#!/usr/bin/env python3
"""Gate on the E14 worker-scaling result (BENCH_e14.json).

The regression this guards: the original strided per-pair fan-out made the
ER kernel *slower* with more workers (8 workers 42% slower than 1 at 40
sources). After the blocked-chunk rework, adding workers must never cost
wall clock on the large fleet:

* On a machine with >= 4 cores the pool genuinely widens, so the gate is
  strict: kernel_ms@4 must beat kernel_ms@1.
* On narrower machines the sizing policy clamps both requests to the same
  effective width, so @4 and @1 are two measurements of the *same*
  configuration; the gate then allows a small noise tolerance (@4 may not
  exceed @1 by more than TOLERANCE). A strided-class regression (tens of
  percent) still fails loudly.

The experiment records the machine's core count in the JSON ("cores"), so
the gate knows which regime produced the file it is reading.
"""

import json
import sys

TOLERANCE = 0.05  # allowed @4/@1 excess when the pool is core-clamped

def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_e14.json"
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    cores = data.get("cores", 1)
    fleets = data["fleets"]
    large = max(fleets, key=lambda fl: fl["sources"])
    failures = []

    for label, kernel in [("ER", large["kernel_ms"]), ("fuse", large["fuse_kernel_ms"])]:
        k1, k4 = kernel["1"], kernel["4"]
        ratio = k4 / k1 if k1 > 0 else float("inf")
        strict = cores >= 4
        limit = 1.0 if strict else 1.0 + TOLERANCE
        regime = "strict (>=4 cores)" if strict else f"core-clamped ({cores} core(s), {TOLERANCE:.0%} tolerance)"
        verdict = "ok" if ratio < limit else "FAIL"
        print(
            f"e14 scaling [{label}] at {large['sources']} sources: "
            f"@1 = {k1:.1f} ms, @4 = {k4:.1f} ms, @4/@1 = {ratio:.3f} "
            f"[{regime}] -> {verdict}"
        )
        if ratio >= limit:
            failures.append(label)

    for fl in fleets:
        for key, label in [("identical", "ER"), ("fuse_identical", "fuse")]:
            if not fl.get(key, False):
                print(f"e14 identity [{label}] at {fl['sources']} sources: outputs DIVERGE")
                failures.append(f"{label}-identity")

    if failures:
        print(f"e14 scaling gate: FAILED ({', '.join(failures)})")
        return 1
    print("e14 scaling gate: pass")
    return 0

if __name__ == "__main__":
    sys.exit(main())
