#!/usr/bin/env bash
# Full local verification: what CI runs, in the same order.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q (root package — tier-1)"
cargo test -q

echo "==> cargo test --workspace -q (full suite)"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> scripts/lint.sh (source-level gate)"
scripts/lint.sh

echo "==> e11 determinism (two runs must be byte-identical)"
tmp_a=$(mktemp) && tmp_b=$(mktemp)
trap 'rm -f "$tmp_a" "$tmp_b"' EXIT
./target/release/e11_robustness > "$tmp_a"
./target/release/e11_robustness > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e12 determinism (two runs must be byte-identical)"
./target/release/e12_lint > "$tmp_a"
./target/release/e12_lint > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e13 observability (full run + count-field determinism)"
./target/release/e13_observability
./target/release/e13_observability --counts > "$tmp_a"
./target/release/e13_observability --counts > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e14 kernel scaling, ER + fuse (full run + count-field determinism)"
./target/release/e14_er_scaling
./target/release/e14_er_scaling --counts > "$tmp_a"
./target/release/e14_er_scaling --counts > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e14 scaling gate (kernel_ms@4 must not regress vs @1 on the large fleet)"
python3 scripts/check_e14_scaling.py BENCH_e14.json

echo "==> e15 containment (full run + count/report determinism)"
./target/release/e15_containment
./target/release/e15_containment --counts > "$tmp_a"
./target/release/e15_containment --counts > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e16 plan optimization (full run + count/rewrite-ledger determinism)"
./target/release/e16_plan_opt
./target/release/e16_plan_opt --counts > "$tmp_a"
./target/release/e16_plan_opt --counts > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e17 crash recovery (full run + resumed-run count determinism)"
./target/release/e17_crash_recovery
./target/release/e17_crash_recovery --counts > "$tmp_a"
./target/release/e17_crash_recovery --counts > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e18 incremental rewrangle (full run + count-field determinism)"
./target/release/e18_incremental
./target/release/e18_incremental --counts > "$tmp_a"
./target/release/e18_incremental --counts > "$tmp_b"
diff "$tmp_a" "$tmp_b"

echo "==> e18 incremental gate (1-source update <= 0.25x cold; identity everywhere)"
python3 scripts/check_e18_incremental.py BENCH_e18.json

echo "==> lint baseline ratchet (new findings vs lint-baseline.json fail)"
./target/release/lint_gate

echo "verify: all green"
