#!/usr/bin/env python3
"""Gate on the E18 incremental-rewrangle result (BENCH_e18.json).

The regressions this guards:

* **Reuse economics** — a 1-source update on the 40-source fleet must cost
  at most RATIO_LIMIT of a cold recompute (cold = same session state with
  every stage memo and cached pair score dropped). If partition memoization
  stops firing — a fingerprint accidentally covering volatile state, the
  PartitionIsolated fact no longer established, the ER remap fast path dead
  — the ratio climbs back toward 1.0 and this fails loudly. The ratio is a
  same-machine, same-run comparison, so it is robust to absolute CI speed.
* **Stale reuse** — every row of the sweep (k = 0 dirty sources through all
  40) must report `identical: true`: the incremental pass is byte-identical
  (`f64::to_bits`, canonical table hash) to the cold comparator. A single
  false here means a memo replayed bytes the cold path would not produce.
* **Pair-cache retention** — a 1-source update must keep at least
  RETENTION_FLOOR of the content-keyed pair scores (the partition-scoped
  eviction fix; the old behaviour wiped the cache).
"""

import json
import sys

RATIO_LIMIT = 0.25      # incr/cold ceiling for a 1-source update
RETENTION_FLOOR = 0.90  # pair-cache survival floor for a 1-source update


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_e18.json"
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    rows = data["rows"]
    failures = []

    for row in rows:
        mark = "ok" if row["identical"] else "FAIL"
        print(
            f"e18 identity [k={row['k']}]: incremental vs cold "
            f"{'byte-identical' if row['identical'] else 'DIVERGED'} -> {mark}"
        )
        if not row["identical"]:
            failures.append(f"identity@k={row['k']}")

    one = next((r for r in rows if r["k"] == 1), None)
    if one is None:
        print("e18 ratio: no k=1 row in the sweep")
        failures.append("missing-k1")
    else:
        ratio = one["ratio"]
        verdict = "ok" if ratio <= RATIO_LIMIT else "FAIL"
        print(
            f"e18 ratio [k=1, {data['num_sources']} sources]: "
            f"cold = {1e3 * one['cold_secs']:.1f} ms, "
            f"incr = {1e3 * one['incr_secs']:.1f} ms, "
            f"ratio = {ratio:.3f} (limit {RATIO_LIMIT}) -> {verdict}"
        )
        if ratio > RATIO_LIMIT:
            failures.append("ratio@k=1")

    retention = data.get("pair_cache_retention", 0.0)
    verdict = "ok" if retention >= RETENTION_FLOOR else "FAIL"
    print(
        f"e18 pair-cache retention [k=1]: {retention:.1%} "
        f"(floor {RETENTION_FLOOR:.0%}) -> {verdict}"
    )
    if retention < RETENTION_FLOOR:
        failures.append("retention")

    if failures:
        print(f"e18 incremental gate: FAILED ({', '.join(failures)})")
        return 1
    print("e18 incremental gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
