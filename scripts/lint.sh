#!/usr/bin/env bash
# Source-level lint gate (the repo-side twin of `wrangler-lint`'s artifact
# analysis). Four rules, all enforced in CI via scripts/verify.sh:
#
#   1. No `.unwrap()` / `.expect(` in library crate `src/` outside test code.
#      Library code must propagate errors; a deliberate invariant may stay if
#      the line carries a `lint-allow: <reason>` comment.
#
#   2. No `HashMap` / `HashSet` in determinism-critical modules — the files
#      whose iteration order feeds ordered output, per the plan determinism
#      audit (`wrangler_lint::audit_steps`, `Plan::describe`). Use `BTreeMap`/
#      `BTreeSet`, or justify a pure-lookup map with a `hash-ok: <reason>`
#      comment.
#
#   3. No `partial_cmp` inside sort/extremum comparators in library code.
#      `partial_cmp(..).unwrap_or(Equal)` makes float orderings silently
#      input-order-dependent under NaN (the PR-3 bug class); use `total_cmp`
#      plus a stable tie-break, or justify with `lint-allow: <reason>`.
#
#   4. No bare `panic!` / `unreachable!` / `todo!` / `unimplemented!` in
#      library `src/` outside test code. A panic in one source's data must
#      not kill the whole pass (the containment layer exists to absorb it);
#      return a structured `TableError` instead, or justify a true
#      invariant with a `lint-allow: <reason>` comment.
#
#   5. No `OpKind::` in `wrangler-core` outside the lowering module. Plan
#      IR nodes built ad hoc bypass the analyzer and the proof-carrying
#      optimizer's fact base; `crates/core/src/lower.rs` is the single
#      sanctioned constructor site (the rest of the core consumes the
#      compiled program through its decision API, never raw nodes).
#      Justify a true exception with a `lint-allow: <reason>` comment.
#
#   6. No direct `std::fs::write` / `File::create` in library `src/`
#      outside `wrangler-ckpt`. A raw write is not atomic: a crash between
#      create and flush leaves a torn file that a later reader may trust.
#      All persistence goes through `wrangler_ckpt::write_atomic` (temp +
#      rename) or the checkpoint store built on it. Justify a true
#      exception with a `lint-allow: <reason>` comment.
#
# Scanning stops at the first `#[cfg(test)]` in a file: this repo keeps test
# modules at the end of each source file.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Rule 1: panics in library code -----------------------------------------
# Library sources only: crates/*/src plus the root src/, excluding bin/
# targets (experiment drivers print and panic freely) and the test shims.
lib_sources() {
  find crates/*/src src -name '*.rs' -not -path '*/src/bin/*' 2>/dev/null | sort
}

scan_panics() {
  local f="$1"
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }  # comment / doc-example lines
    /\.unwrap\(\)|\.expect\(/ {
      if ($0 !~ /lint-allow:/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }
  ' "$f"
}

panic_hits=$(for f in $(lib_sources); do scan_panics "$f"; done)
if [ -n "$panic_hits" ]; then
  echo "lint: unwrap()/expect( in library code (add \`// lint-allow: <reason>\` only for true invariants):"
  echo "$panic_hits"
  fail=1
fi

# --- Rule 2: hash collections in determinism-critical modules ---------------
DETERMINISM_CRITICAL=(
  crates/quality/src/fd.rs
  crates/quality/src/repair.rs
  crates/resolve/src/blocking.rs
  crates/resolve/src/cluster.rs
  crates/extract/src/induce.rs
  crates/extract/src/repair.rs
  crates/fusion/src/claims.rs
  crates/fusion/src/truthfinder.rs
  crates/table/src/ops.rs
  crates/core/src/wrangler.rs
)

scan_hash() {
  local f="$1"
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /HashMap|HashSet/ {
      if ($0 !~ /hash-ok:/ && prev !~ /hash-ok:/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }
    { prev = $0 }
  ' "$f"
}

hash_hits=$(for f in "${DETERMINISM_CRITICAL[@]}"; do
  [ -f "$f" ] && scan_hash "$f" || true
done)
if [ -n "$hash_hits" ]; then
  echo "lint: HashMap/HashSet in determinism-critical module (use BTreeMap/BTreeSet or add \`// hash-ok: <reason>\`):"
  echo "$hash_hits"
  fail=1
fi

# --- Rule 3: NaN-unsafe comparators in sorts ---------------------------------
# A `.sort_by(` / `.sort_unstable_by(` / `.max_by(` / `.min_by(` call opens a
# short window (the comparator closure, in this codebase at most 6 lines)
# within which `partial_cmp` is forbidden unless the line carries
# `lint-allow: <reason>`. `fn partial_cmp` definitions (PartialOrd impls)
# outside such a window are untouched.
scan_nan_sorts() {
  local f="$1"
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }  # comment / doc-example lines
    /\.sort_by\(|\.sort_unstable_by\(|\.sort_by_key\(|\.max_by\(|\.min_by\(/ { window = 6 }
    window > 0 {
      if ($0 ~ /partial_cmp/ && $0 !~ /lint-allow:/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
      window--
    }
  ' "$f"
}

nan_hits=$(for f in $(lib_sources); do scan_nan_sorts "$f"; done)
if [ -n "$nan_hits" ]; then
  echo "lint: partial_cmp inside a sort comparator (NaN makes the order input-dependent; use total_cmp + a stable tie-break, or add \`// lint-allow: <reason>\`):"
  echo "$nan_hits"
  fail=1
fi

# --- Rule 4: bare panics in library code --------------------------------------
# `panic!`/`unreachable!`/`todo!`/`unimplemented!` outside test modules turn
# one source's bad data into a whole-pass crash; library code must return a
# structured error and let the containment layer decide.
scan_bare_panics() {
  local f="$1"
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }  # comment / doc-example lines
    /(^|[^_[:alnum:]])(panic!|unreachable!|todo!|unimplemented!)/ {
      if ($0 !~ /lint-allow:/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }
  ' "$f"
}

bare_panic_hits=$(for f in $(lib_sources); do scan_bare_panics "$f"; done)
if [ -n "$bare_panic_hits" ]; then
  echo "lint: bare panic!/unreachable!/todo!/unimplemented! in library code (return a structured TableError, or add \`// lint-allow: <reason>\` for a true invariant):"
  echo "$bare_panic_hits"
  fail=1
fi

# --- Rule 5: OpKind construction outside the lowering module ------------------
# The typed plan IR has exactly one constructor site in the core; everything
# else consumes the compiled PlanProgram through its decision API. A raw
# OpKind anywhere else in wrangler-core means a node the analyzer never saw.
scan_opkind() {
  local f="$1"
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }  # comment / doc-example lines
    /OpKind::/ {
      if ($0 !~ /lint-allow:/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }
  ' "$f"
}

opkind_hits=$(for f in $(find crates/core/src -name '*.rs' | sort); do
  [ "$f" = "crates/core/src/lower.rs" ] && continue
  scan_opkind "$f"
done)
if [ -n "$opkind_hits" ]; then
  echo "lint: OpKind:: constructed in wrangler-core outside crates/core/src/lower.rs (lower there, or add \`// lint-allow: <reason>\`):"
  echo "$opkind_hits"
  fail=1
fi

# --- Rule 6: non-atomic file writes outside wrangler-ckpt ---------------------
# `std::fs::write` / `File::create` in library code can tear on a crash;
# wrangler-ckpt owns the atomic temp+rename primitive and is the only crate
# allowed to touch the raw APIs (it is what makes everyone else safe).
scan_raw_writes() {
  local f="$1"
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }  # comment / doc-example lines
    /fs::write[[:space:](]|File::create[[:space:](]/ {
      if ($0 !~ /lint-allow:/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }
  ' "$f"
}

raw_write_hits=$(for f in $(lib_sources); do
  case "$f" in crates/ckpt/src/*) continue ;; esac
  scan_raw_writes "$f"
done)
if [ -n "$raw_write_hits" ]; then
  echo "lint: direct fs::write/File::create in library code (use wrangler_ckpt::write_atomic, or add \`// lint-allow: <reason>\`):"
  echo "$raw_write_hits"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: clean"
